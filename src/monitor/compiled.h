// Compiled monitor backend: executes the slot-indexed bytecode form
// produced by src/ir/compile.h. Per event it does an indexed dispatch from
// (current state, event kind, task id) straight to one fused handler
// program — guards, bodies and the state commit of every candidate
// transition inlined back to back — and runs it in a single flat postfix
// pass over a dense double array. No string comparison, map lookup,
// expression-tree walk, or per-transition call anywhere on the hot path.
// Semantics are identical to InterpretedMonitor (enforced by the
// differential fuzz test in tests/compiled_monitor_test.cc).
#ifndef SRC_MONITOR_COMPILED_H_
#define SRC_MONITOR_COMPILED_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/ir/compile.h"
#include "src/monitor/monitor.h"
#include "src/monitor/vm_core.h"

namespace artemis {

class CompiledMonitor final : public Monitor {
 public:
  explicit CompiledMonitor(CompiledMachine machine)
      : CompiledMonitor(std::make_shared<const CompiledMachine>(std::move(machine))) {}
  // Shares an immutable compiled program (a CompiledSpecCache artifact slot)
  // across monitor instances: the bytecode, pools, and dispatch table are
  // read-only after compilation, so N sweep workers can execute the same
  // machine concurrently while each keeps its own state/slot/stack arrays.
  explicit CompiledMonitor(std::shared_ptr<const CompiledMachine> machine);

  // Step is defined inline (below, on top of the shared VM core in
  // vm_core.h) so host-side sweep loops that hold a CompiledMonitor by
  // concrete type get the whole VM inlined into their event loop — the
  // class is final, so such calls devirtualize, and keeping the body
  // visible lets them also inline.
  bool Step(const MonitorEvent& event, MonitorVerdict* verdict) override;
  void HardReset() override;
  void OnPathRestart(PathId path) override;
  const std::string& label() const override { return machine_->property_label; }
  double StepCycles(const CostModel& costs) const override;
  std::size_t FramBytes() const override;

  // Test hooks, mirroring InterpretedMonitor's.
  const std::string& current_state() const { return machine_->state_names[current_]; }
  double VarValue(const std::string& name) const;
  const CompiledMachine& machine() const { return *machine_; }

  // Hot-swap entry points (src/swap/hotswap.cc). The controller captures
  // the FRAM-resident execution state of the retiring image and installs
  // the migrated values into the freshly-built replacement monitor.
  std::uint16_t current_id() const { return current_; }
  const std::vector<double>& slots() const { return slots_; }
  void InstallMigratedState(std::uint16_t state, std::vector<double> slots) {
    current_ = state;
    slots_ = std::move(slots);
    slots_.resize(machine_->initial_slots.size(), 0.0);
  }

 private:
  std::shared_ptr<const CompiledMachine> machine_;
  // FRAM-resident execution state: dense state id + variable slots.
  std::uint16_t current_ = 0;
  std::vector<double> slots_;
  // Scratch operand stack, sized once from machine_.max_stack.
  std::vector<double> stack_;
};

inline bool CompiledMonitor::Step(const MonitorEvent& event, MonitorVerdict* verdict) {
  if (machine_->path_scope != kNoPath && event.path != machine_->path_scope) {
    return false;  // Out-of-scope events are invisible to this machine.
  }
  VmFailure failure;
  const bool failed =
      RunCompiledHandler(*machine_, machine_->HandlerFor(current_, event.kind, event.task),
                         event, &current_, slots_.data(), stack_.data(), &failure);
  if (failed) {
    const FailRecord& fail = machine_->fail_pool[failure.fail_index];
    verdict->action = fail.action;
    verdict->target_path = fail.target_path;
    verdict->property = fail.property;
  }
  return failed;
}

}  // namespace artemis

#endif  // SRC_MONITOR_COMPILED_H_
