#include "src/monitor/builtin.h"

#include <algorithm>

namespace artemis {
namespace {

// The Path qualifier is an event scope only when the anchor task actually
// lies on that path (path merging); otherwise it is purely the action
// target (cross-path dependencies).
PathId ScopeFor(const AppGraph& graph, PathId qualifier, TaskId anchor) {
  if (qualifier == kNoPath) {
    return kNoPath;
  }
  const auto& path = graph.path(qualifier);
  return std::find(path.begin(), path.end(), anchor) != path.end() ? qualifier : kNoPath;
}

}  // namespace

bool MaxTriesMonitor::Step(const MonitorEvent& event, MonitorVerdict* verdict) {
  if (!InScope(event) || event.task != task_) {
    return false;
  }
  if (event.kind == EventKind::kEndTask) {
    tries_ = 0;
    return false;
  }
  // StartTask: mirrors the Figure 7 machine — the (max+1)-th consecutive
  // start signals the failure and resets the counter.
  if (tries_ >= max_) {
    tries_ = 0;
    FillVerdict(verdict, action_);
    return true;
  }
  ++tries_;
  return false;
}

bool MaxDurationMonitor::Step(const MonitorEvent& event, MonitorVerdict* verdict) {
  if (!started_) {
    if (InScope(event) && event.kind == EventKind::kStartTask && event.task == task_) {
      started_ = true;
      start_ = event.timestamp;
    }
    return false;
  }
  // Started: anyEvent past the limit is a violation (Figure 7, property 2);
  // note anyEvent intentionally ignores the path scope the way the
  // interpreted machine does not get out-of-scope events at all, so scope
  // filter applies to every event here as well.
  if (!InScope(event)) {
    return false;
  }
  const SimDuration elapsed = event.timestamp >= start_ ? event.timestamp - start_ : 0;
  if (elapsed > limit_) {
    started_ = false;
    FillVerdict(verdict, action_);
    return true;
  }
  if (event.kind == EventKind::kEndTask && event.task == task_) {
    started_ = false;  // Completed in time.
  }
  return false;
}

void MaxDurationMonitor::OnPathRestart(PathId path) {
  if (scope_path_ == kNoPath || scope_path_ == path) {
    started_ = false;
  }
}

bool CollectMonitor::Step(const MonitorEvent& event, MonitorVerdict* verdict) {
  if (!InScope(event)) {
    return false;
  }
  if (event.kind == EventKind::kEndTask && event.task == dep_) {
    ++have_;
    return false;
  }
  if (event.kind == EventKind::kEndTask && event.task == task_) {
    have_ = 0;  // The collecting task committed: samples are consumed.
    return false;
  }
  if (event.kind == EventKind::kStartTask && event.task == task_) {
    if (have_ >= count_) {
      // Enough samples; a power-failure re-execution of the task passes
      // again because consumption happens at commit, not at start.
      return false;
    }
    if (reset_on_fail_) {
      have_ = 0;
    }
    FillVerdict(verdict, action_);
    return true;
  }
  return false;
}

bool MitdMonitor::Step(const MonitorEvent& event, MonitorVerdict* verdict) {
  if (!InScope(event)) {
    return false;
  }
  if (event.kind == EventKind::kEndTask && event.task == dep_) {
    end_dep_ = event.timestamp;  // Enter (or refresh) WaitStartA.
    waiting_ = true;
    return false;
  }
  if (event.kind == EventKind::kEndTask && event.task == task_) {
    attempts_ = 0;  // The dependent task committed: the attempt succeeded.
    return false;
  }
  // The monitor stays armed after a start: every start of A — including a
  // power-failure re-execution — is checked against the latest completion
  // of B, matching the Figure 10 generated code (which compares against the
  // dependent task's finish time on each event).
  if (waiting_ && event.kind == EventKind::kStartTask && event.task == task_) {
    const SimDuration delay = event.timestamp >= end_dep_ ? event.timestamp - end_dep_ : 0;
    if (delay <= limit_) {
      return false;  // In time; the counter clears when the task commits.
    }
    if (max_attempt_ > 0 && attempts_ + 1 >= max_attempt_) {
      attempts_ = 0;
      FillVerdict(verdict, max_action_, "/maxAttempt");
      return true;
    }
    ++attempts_;
    FillVerdict(verdict, action_);
    return true;
  }
  return false;
}

bool PeriodMonitor::Step(const MonitorEvent& event, MonitorVerdict* verdict) {
  if (!InScope(event) || event.kind != EventKind::kStartTask || event.task != task_) {
    return false;
  }
  if (!started_) {
    started_ = true;
    last_ = event.timestamp;
    return false;
  }
  const SimDuration gap = event.timestamp >= last_ ? event.timestamp - last_ : 0;
  last_ = event.timestamp;
  if (gap > bound_) {
    FillVerdict(verdict, action_);
    return true;
  }
  return false;
}

bool DpDataMonitor::Step(const MonitorEvent& event, MonitorVerdict* verdict) {
  if (!InScope(event) || event.kind != EventKind::kEndTask || event.task != task_ ||
      !event.has_dep_data) {
    return false;
  }
  if (event.dep_data < lo_ || event.dep_data > hi_) {
    FillVerdict(verdict, action_);
    return true;
  }
  return false;
}

bool MinEnergyMonitor::Step(const MonitorEvent& event, MonitorVerdict* verdict) {
  if (!InScope(event) || event.kind != EventKind::kStartTask || event.task != task_) {
    return false;
  }
  if (event.energy_fraction < fraction_) {
    FillVerdict(verdict, action_);
    return true;
  }
  return false;
}

StatusOr<std::unique_ptr<Monitor>> MakeBuiltinMonitor(const PropertyAst& property,
                                                      const std::string& task_name,
                                                      const AppGraph& graph,
                                                      bool collect_reset_on_fail) {
  const std::optional<TaskId> anchor = graph.FindTask(task_name);
  if (!anchor.has_value()) {
    return Status::Internal("MakeBuiltinMonitor: unknown task '" + task_name + "'");
  }
  TaskId dep = kInvalidTask;
  if (!property.dp_task.empty()) {
    const std::optional<TaskId> found = graph.FindTask(property.dp_task);
    if (!found.has_value()) {
      return Status::Internal("MakeBuiltinMonitor: unknown dpTask '" + property.dp_task + "'");
    }
    dep = *found;
  }
  const std::string label = property.Label(task_name);
  const PathId scope = ScopeFor(graph, property.path, *anchor);
  std::unique_ptr<Monitor> monitor;
  switch (property.kind) {
    case PropertyKind::kMaxTries:
      monitor = std::make_unique<MaxTriesMonitor>(label, *anchor, property.count,
                                                  property.on_fail, property.path, scope);
      break;
    case PropertyKind::kMaxDuration:
      monitor = std::make_unique<MaxDurationMonitor>(label, *anchor, property.duration,
                                                     property.on_fail, property.path, scope);
      break;
    case PropertyKind::kCollect:
      monitor = std::make_unique<CollectMonitor>(label, *anchor, dep, property.count,
                                                 property.on_fail, property.path,
                                                 collect_reset_on_fail, scope);
      break;
    case PropertyKind::kMitd:
      monitor = std::make_unique<MitdMonitor>(label, *anchor, dep, property.duration,
                                              property.on_fail, property.max_attempt,
                                              property.max_attempt_action, property.path,
                                              scope);
      break;
    case PropertyKind::kPeriod:
      monitor = std::make_unique<PeriodMonitor>(label, *anchor, property.duration,
                                                property.jitter, property.on_fail,
                                                property.path, scope);
      break;
    case PropertyKind::kDpData:
      monitor = std::make_unique<DpDataMonitor>(label, *anchor, property.range_lo,
                                                property.range_hi, property.on_fail,
                                                property.path, scope);
      break;
    case PropertyKind::kMinEnergy:
      monitor = std::make_unique<MinEnergyMonitor>(label, *anchor, property.min_energy,
                                                   property.on_fail, property.path, scope);
      break;
  }
  return monitor;
}

}  // namespace artemis
