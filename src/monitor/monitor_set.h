// MonitorSet: the ARTEMIS application-specific monitor component.
//
// Implements the kernel's PropertyChecker interface over a collection of
// per-property monitors. Responsibilities:
//  * cycle accounting under CostTag::kMonitor (Figure 15's "monitor
//    overhead" bar);
//  * power-failure-resilient event processing: the ImmortalThreads-style
//    local continuation persists which monitors have already consumed the
//    current event, so a re-delivered event (same seq) resumes instead of
//    double-stepping (Section 4.2.3);
//  * exactly-once verdicts: once an event's verdict is computed it is cached
//    against the seq, so the kernel can retry boundary transitions
//    idempotently;
//  * verdict arbitration across simultaneously failing properties;
//  * FRAM byte accounting under MemOwner::kMonitor for Table 2.
#ifndef SRC_MONITOR_MONITOR_SET_H_
#define SRC_MONITOR_MONITOR_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/flight/recorder.h"
#include "src/ir/lowering.h"
#include "src/kernel/app_graph.h"
#include "src/kernel/checker.h"
#include "src/kernel/immortal.h"
#include "src/monitor/arbitration.h"
#include "src/monitor/monitor.h"
#include "src/obs/bus.h"
#include "src/spec/ast.h"

namespace artemis {

enum class MonitorBackend { kInterpreted, kBuiltin, kCompiled };

const char* MonitorBackendName(MonitorBackend backend);

// Where the monitors live relative to the application MCU — the Section 7
// "Implementation Alternatives" trade-off:
//  * kSeparate — the paper's design: a distinct monitor component, events
//    cross the runtime->monitor interface (default).
//  * kInlined  — compiler-woven checks: no interface-crossing cost and the
//    per-step work is accounted as runtime time, at the price of duplicated
//    code (larger .text, see InlinedTextBytes).
//  * kRemote   — monitors on an external wirelessly-connected device: the
//    local MCU only pays radio TX/RX per event, which is far more expensive
//    than local checking (wireless >> compute).
enum class MonitorPlacement { kSeparate, kInlined, kRemote };

const char* MonitorPlacementName(MonitorPlacement placement);

struct RadioProfile {
  // Transmitting one MonitorEvent_t to the external monitor.
  SimDuration tx_time = 4 * kMillisecond;
  Milliwatts tx_power = 24.0;
  // Receiving the verdict.
  SimDuration rx_time = 2 * kMillisecond;
  Milliwatts rx_power = 18.0;
};

struct MonitorSetOptions {
  ArbitrationPolicy policy = ArbitrationPolicy::kSeverity;
  MonitorPlacement placement = MonitorPlacement::kSeparate;
  RadioProfile radio;  // Used by kRemote only.
};

class MonitorSet : public PropertyChecker {
 public:
  explicit MonitorSet(ArbitrationPolicy policy = ArbitrationPolicy::kSeverity)
      : MonitorSet(MonitorSetOptions{.policy = policy}) {}
  explicit MonitorSet(const MonitorSetOptions& options)
      : policy_(options.policy), placement_(options.placement), radio_(options.radio) {}

  void Add(std::unique_ptr<Monitor> monitor);
  std::size_t size() const { return monitors_.size(); }
  const Monitor& monitor(std::size_t i) const { return *monitors_[i]; }
  Monitor& monitor(std::size_t i) { return *monitors_[i]; }

  // PropertyChecker implementation.
  void HardReset(Mcu& mcu) override;
  void Finalize(Mcu& mcu) override;
  CheckOutcome OnEvent(const MonitorEvent& event, Mcu& mcu) override;
  void OnPathRestart(PathId path, Mcu& mcu) override;
  std::string Name() const override { return "artemis-monitors"; }

  // Persistent monitor footprint in bytes (Table 2, monitor FRAM column).
  std::size_t FramBytes() const;

  // Number of processed events / reported violations, for benches.
  std::uint64_t events_processed() const { return events_processed_; }
  std::uint64_t violations_reported() const { return violations_reported_; }

  MonitorPlacement placement() const { return placement_; }

  // Cross-layer observability bus (src/obs): when set, the monitor set
  // publishes event deliveries, arbitrated verdicts (with per-event cycle
  // cost), and path-reset propagation. nullptr = off.
  void set_observer(obs::EventBus* bus) { obs_ = bus; }

  // On-device flight recorder (src/flight): when set, violated verdicts are
  // sealed into the FRAM black box before the verdict cache is written, so
  // an interrupted append replays the whole arbitration and retries.
  void set_flight(flight::FlightRecorder* recorder) { flight_ = recorder; }

  // .text proxy when the monitors are inlined at every event site instead of
  // generated once: the per-machine code duplicates per call site
  // (Section 6's memory-footprint argument against AOP-style weaving).
  static std::size_t InlinedTextBytes(std::size_t separate_text_bytes,
                                      std::size_t call_sites);

  // ---- hot-swap entry points (src/swap/hotswap.cc) ----------------------
  // True when no event is mid-arbitration: the continuation cursor is
  // retired and every monitor's FRAM state is at a transition boundary.
  // The swap controller only replaces images at quiescence.
  bool quiescent() const { return !continuation_.InProgress(); }
  // Atomically (host-side; durability is the controller's job) replaces the
  // monitor collection with the new image's freshly-built, state-migrated
  // monitors. The seq-keyed verdict cache and event/violation counters are
  // kept: the event stream continues across the swap, so a re-delivered
  // pre-swap event must still replay its cached verdict instead of
  // double-stepping the new machines.
  void ReplaceMonitors(std::vector<std::unique_ptr<Monitor>> monitors);

 private:
  ArbitrationPolicy policy_;
  MonitorPlacement placement_ = MonitorPlacement::kSeparate;
  RadioProfile radio_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  obs::EventBus* obs_ = nullptr;
  flight::FlightRecorder* flight_ = nullptr;

  // ---- FRAM-resident progress state (ImmortalThreads-backed) ----
  ImmortalContext continuation_{nullptr, MemOwner::kMonitor, "monitor-continuation"};
  std::vector<MonitorVerdict> pending_;  // failures gathered for the in-flight event
  std::uint64_t done_seq_ = 0;           // last fully processed event
  // Explicit cache-valid flag: `done_seq_` alone cannot distinguish "no
  // event processed yet" from a processed event with seq == 0.
  bool has_cached_verdict_ = false;
  MonitorVerdict cached_verdict_;        // its arbitrated verdict
  bool arena_registered_ = false;

  std::uint64_t events_processed_ = 0;
  std::uint64_t violations_reported_ = 0;
};

// Builds a MonitorSet from a validated spec with the chosen backend.
// kInterpreted lowers each property to an intermediate-language machine and
// interprets it; kBuiltin instantiates the Figure 10 style structures;
// kCompiled lowers and then flattens each machine into slot-indexed
// bytecode (src/ir/compile.h) for fast host-side sweeps — see
// docs/monitor-backends.md.
StatusOr<std::unique_ptr<MonitorSet>> BuildMonitorSet(const SpecAst& spec, const AppGraph& graph,
                                                      MonitorBackend backend,
                                                      const LoweringOptions& lowering = {},
                                                      ArbitrationPolicy policy =
                                                          ArbitrationPolicy::kSeverity);

// Full-options variant (placement alternatives).
StatusOr<std::unique_ptr<MonitorSet>> BuildMonitorSet(const SpecAst& spec, const AppGraph& graph,
                                                      MonitorBackend backend,
                                                      const LoweringOptions& lowering,
                                                      const MonitorSetOptions& options);

}  // namespace artemis

#endif  // SRC_MONITOR_MONITOR_SET_H_
