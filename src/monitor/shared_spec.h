// Sharable compiled-spec artifacts: everything the property pipeline
// (parse -> validate -> lower -> bytecode-compile) produces that is
// immutable at run time, bundled so it can be built once and shared across
// arbitrarily many concurrently-running simulations. Monitor *state* (the
// current FSM state, variable slots, continuation cursors) stays per-run in
// the Monitor/MonitorSet instances built from the artifact; the AST,
// lowered machines, and bytecode programs are read-only after construction.
//
// This is the unit the sweep engine's CompiledSpecCache (src/sweep) keys by
// spec text: a cache hit hands out the same shared_ptr and performs zero
// pipeline work.
#ifndef SRC_MONITOR_SHARED_SPEC_H_
#define SRC_MONITOR_SHARED_SPEC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/compile.h"
#include "src/ir/lowering.h"
#include "src/kernel/app_graph.h"
#include "src/monitor/monitor_set.h"
#include "src/spec/ast.h"

namespace artemis {

// How much of the pipeline an artifact must run for a given backend:
// builtin monitors (and the Mayfly baseline) are built straight from the
// AST; the interpreter needs lowered machines; the bytecode VM additionally
// needs compiled programs. Artifacts for a cheaper stage are reusable by
// anything that needs less (kCompiled artifacts serve all three backends).
enum class SpecArtifactStage { kAst, kLowered, kCompiled };

SpecArtifactStage StageForBackend(MonitorBackend backend);
const char* SpecArtifactStageName(SpecArtifactStage stage);

struct SharedSpecArtifact {
  std::string spec_text;
  SpecAst ast;
  std::vector<std::string> validation_warnings;
  SpecArtifactStage stage = SpecArtifactStage::kAst;
  // Populated for kLowered and kCompiled stages; element i lowers property
  // i of the spec in declaration order.
  std::vector<StateMachine> machines;
  // Populated for the kCompiled stage only, parallel to `machines`.
  std::vector<CompiledMachine> compiled;
};

using SharedSpecArtifactPtr = std::shared_ptr<const SharedSpecArtifact>;

// Runs the pipeline once: parse + validate, then lower / compile as `stage`
// requires. The returned artifact is immutable and safe to share across
// threads.
StatusOr<SharedSpecArtifactPtr> BuildSpecArtifact(std::string spec_text, const AppGraph& graph,
                                                  SpecArtifactStage stage,
                                                  const LoweringOptions& lowering = {});

// As above, from an already-parsed AST (skips the parse step).
StatusOr<SharedSpecArtifactPtr> BuildSpecArtifactFromAst(const SpecAst& spec,
                                                         const AppGraph& graph,
                                                         SpecArtifactStage stage,
                                                         const LoweringOptions& lowering = {});

// Builds a fresh MonitorSet (per-run mutable state) over the artifact's
// shared immutable programs. Performs no parsing, lowering, analysis, or
// compilation: interpreted/compiled monitors alias the artifact's machine
// storage via aliasing shared_ptrs, builtin monitors are instantiated from
// the AST. The artifact's stage must cover `backend` (a kAst artifact
// cannot serve kInterpreted/kCompiled).
StatusOr<std::unique_ptr<MonitorSet>> BuildMonitorSetFromArtifact(
    const SharedSpecArtifactPtr& artifact, const AppGraph& graph, MonitorBackend backend,
    const LoweringOptions& lowering = {}, const MonitorSetOptions& options = {});

}  // namespace artemis

#endif  // SRC_MONITOR_SHARED_SPEC_H_
