#include "src/monitor/interp.h"

namespace artemis {

InterpretedMonitor::InterpretedMonitor(StateMachine machine)
    : machine_(std::move(machine)), current_(machine_.initial), env_(machine_.variables) {}

void InterpretedMonitor::HardReset() {
  current_ = machine_.initial;
  env_ = machine_.variables;
}

void InterpretedMonitor::OnPathRestart(PathId path) {
  if (!machine_.reset_on_path_restart) {
    return;
  }
  if (machine_.path_scope != kNoPath && machine_.path_scope != path) {
    return;
  }
  current_ = machine_.initial;
  // Counters keep their values; only the control state re-initializes, so a
  // maxDuration machine abandons its in-flight measurement.
}

bool InterpretedMonitor::TriggerMatches(const Transition& t, const MonitorEvent& event) const {
  switch (t.trigger) {
    case TriggerKind::kStartTask:
      return event.kind == EventKind::kStartTask && event.task == t.task;
    case TriggerKind::kEndTask:
      return event.kind == EventKind::kEndTask && event.task == t.task;
    case TriggerKind::kAnyEvent:
      return true;
  }
  return false;
}

bool InterpretedMonitor::Step(const MonitorEvent& event, MonitorVerdict* verdict) {
  if (machine_.path_scope != kNoPath && event.path != machine_.path_scope) {
    return false;  // Out-of-scope events are invisible to this machine.
  }
  for (const Transition& t : machine_.transitions) {
    if (t.from != current_ || !TriggerMatches(t, event)) {
      continue;
    }
    if (t.guard != nullptr && EvalExpr(*t.guard, env_, event) == 0.0) {
      continue;
    }
    const bool failed = ExecStmts(t.body, &env_, event, verdict);
    current_ = t.to;
    return failed;
  }
  return false;  // Implicit self-transition.
}

double InterpretedMonitor::StepCycles(const CostModel& costs) const {
  return costs.interp_step_cycles;
}

std::size_t InterpretedMonitor::FramBytes() const {
  // Current-state word plus one double per machine variable.
  return sizeof(std::uint16_t) + machine_.variables.size() * sizeof(double);
}

double InterpretedMonitor::VarValue(const std::string& name) const {
  const auto it = env_.find(name);
  return it != env_.end() ? it->second : 0.0;
}

}  // namespace artemis
