#include "src/monitor/interp.h"

#include <algorithm>

namespace artemis {

std::size_t InterpretedMonitor::StateIndex(const std::string& state) const {
  const auto it = std::find(machine_->states.begin(), machine_->states.end(), state);
  return it != machine_->states.end()
             ? static_cast<std::size_t>(it - machine_->states.begin())
             : 0;
}

InterpretedMonitor::InterpretedMonitor(std::shared_ptr<const StateMachine> machine)
    : machine_(std::move(machine)), env_(machine_->variables) {
  initial_index_ = StateIndex(machine_->initial);
  current_ = initial_index_;
  by_state_.resize(machine_->states.size());
  to_index_.reserve(machine_->transitions.size());
  for (std::uint32_t i = 0; i < machine_->transitions.size(); ++i) {
    const Transition& t = machine_->transitions[i];
    by_state_[StateIndex(t.from)].push_back(i);
    to_index_.push_back(StateIndex(t.to));
  }
}

void InterpretedMonitor::HardReset() {
  current_ = initial_index_;
  env_ = machine_->variables;
}

void InterpretedMonitor::OnPathRestart(PathId path) {
  if (!machine_->reset_on_path_restart) {
    return;
  }
  if (machine_->path_scope != kNoPath && machine_->path_scope != path) {
    return;
  }
  current_ = initial_index_;
  // Counters keep their values; only the control state re-initializes, so a
  // maxDuration machine abandons its in-flight measurement.
}

bool InterpretedMonitor::TriggerMatches(const Transition& t, const MonitorEvent& event) const {
  switch (t.trigger) {
    case TriggerKind::kStartTask:
      return event.kind == EventKind::kStartTask && event.task == t.task;
    case TriggerKind::kEndTask:
      return event.kind == EventKind::kEndTask && event.task == t.task;
    case TriggerKind::kAnyEvent:
      return true;
  }
  return false;
}

bool InterpretedMonitor::Step(const MonitorEvent& event, MonitorVerdict* verdict) {
  if (machine_->path_scope != kNoPath && event.path != machine_->path_scope) {
    return false;  // Out-of-scope events are invisible to this machine.
  }
  // Only transitions leaving the current state are candidates; unrelated
  // states are never scanned.
  for (const std::uint32_t i : by_state_[current_]) {
    const Transition& t = machine_->transitions[i];
    if (!TriggerMatches(t, event)) {
      continue;
    }
    if (t.guard != nullptr && EvalExpr(*t.guard, env_, event) == 0.0) {
      continue;
    }
    const bool failed = ExecStmts(t.body, &env_, event, verdict);
    current_ = to_index_[i];
    return failed;
  }
  return false;  // Implicit self-transition.
}

double InterpretedMonitor::StepCycles(const CostModel& costs) const {
  return costs.interp_step_cycles;
}

std::size_t InterpretedMonitor::FramBytes() const {
  // Current-state word plus one double per machine variable.
  return sizeof(std::uint16_t) + machine_->variables.size() * sizeof(double);
}

double InterpretedMonitor::VarValue(const std::string& name) const {
  const auto it = env_.find(name);
  return it != env_.end() ? it->second : 0.0;
}

}  // namespace artemis
