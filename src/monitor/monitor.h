// The per-property monitor interface shared by the two backends:
//  * InterpretedMonitor executes an intermediate-language state machine
//    (what the generated C code would do, kept as data);
//  * the builtin monitors in builtin.h mirror Figure 10's hand-laid-out
//    property_t structures for the fast path.
// Both are driven by MonitorSet, which owns persistence and cycle
// accounting.
#ifndef SRC_MONITOR_MONITOR_H_
#define SRC_MONITOR_MONITOR_H_

#include <cstddef>
#include <string>

#include "src/kernel/checker.h"
#include "src/sim/cost_model.h"

namespace artemis {

class Monitor {
 public:
  virtual ~Monitor() = default;

  // Processes one event; returns true and fills `verdict` when the property
  // failed on this event. Mutates internal (FRAM-resident) state.
  virtual bool Step(const MonitorEvent& event, MonitorVerdict* verdict) = 0;

  // One-time initialization at first boot.
  virtual void HardReset() = 0;

  // The runtime restarted `path`; in-flight machines re-initialize
  // (Section 3.3), counting machines keep their counters.
  virtual void OnPathRestart(PathId path) = 0;

  virtual const std::string& label() const = 0;

  // Simulated cycle cost of one Step call.
  virtual double StepCycles(const CostModel& costs) const = 0;

  // Persistent (FRAM) footprint in bytes, for Table 2.
  virtual std::size_t FramBytes() const = 0;
};

}  // namespace artemis

#endif  // SRC_MONITOR_MONITOR_H_
