// Branch-free class kernels for the batch monitor VM's cohort pass
// (src/monitor/compiled_batch.h). A cohort is a run of lane indices that
// all resolved to the SAME dispatch-table entry this pass, so the entry's
// decoded Summary (field, slot, threshold, destination state, compare op)
// is loop-invariant and every kernel below is a straight-line sweep over
// the cohort with no per-lane dispatch.
//
// Two shapes per kernel:
//  * indexed — the cohort is an arbitrary (ascending) lane-index list;
//    state/slot accesses are gathers/scatters through the list;
//  * dense   — the cohort is a contiguous lane range [base, base+len),
//    the common case when a tile's lanes march in lockstep; every access
//    is contiguous or constant-strided and the compiler's autovectorizer
//    gets a clean loop.
//
// The guard kernel is the mask-vectorized one: elapsed values are gathered
// into a contiguous scratch buffer, compared against the threshold as a
// vector, and the destination state is blended in under the compare mask.
// Portable builds express this as restrict-qualified compare-select loops
// (compiled to cmov/blend by any optimizing compiler); defining
// ARTEMIS_SIMD=1 swaps in explicit SSE2 (x86-64) or NEON (aarch64)
// wrappers. Both paths perform the identical IEEE-754 subtract and
// compare, so results are bit-identical — tools/ci.sh builds the tree both
// ways and byte-diffs fleet output to enforce it.
#ifndef SRC_MONITOR_BATCH_KERNELS_H_
#define SRC_MONITOR_BATCH_KERNELS_H_

#include <cstdint>

#include "src/monitor/vm_core.h"

#if defined(ARTEMIS_SIMD) && ARTEMIS_SIMD
#if defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define ARTEMIS_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__)
#define ARTEMIS_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace artemis::batch_kernels {

enum class GuardCmp : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

template <GuardCmp C>
inline bool Pass(double a, double threshold) {
  if constexpr (C == GuardCmp::kLt) {
    return a < threshold;
  } else if constexpr (C == GuardCmp::kLe) {
    return a <= threshold;
  } else if constexpr (C == GuardCmp::kGt) {
    return a > threshold;
  } else if constexpr (C == GuardCmp::kGe) {
    return a >= threshold;
  } else if constexpr (C == GuardCmp::kEq) {
    return a == threshold;
  } else {
    return a != threshold;
  }
}

#if defined(ARTEMIS_SIMD_SSE2)
template <GuardCmp C>
inline __m128d Mask(__m128d a, __m128d threshold) {
  if constexpr (C == GuardCmp::kLt) {
    return _mm_cmplt_pd(a, threshold);
  } else if constexpr (C == GuardCmp::kLe) {
    return _mm_cmple_pd(a, threshold);
  } else if constexpr (C == GuardCmp::kGt) {
    return _mm_cmpgt_pd(a, threshold);
  } else if constexpr (C == GuardCmp::kGe) {
    return _mm_cmpge_pd(a, threshold);
  } else if constexpr (C == GuardCmp::kEq) {
    return _mm_cmpeq_pd(a, threshold);
  } else {
    return _mm_cmpneq_pd(a, threshold);
  }
}
#endif

#if defined(ARTEMIS_SIMD_NEON)
template <GuardCmp C>
inline uint64x2_t Mask(float64x2_t a, float64x2_t threshold) {
  if constexpr (C == GuardCmp::kLt) {
    return vcltq_f64(a, threshold);
  } else if constexpr (C == GuardCmp::kLe) {
    return vcleq_f64(a, threshold);
  } else if constexpr (C == GuardCmp::kGt) {
    return vcgtq_f64(a, threshold);
  } else if constexpr (C == GuardCmp::kGe) {
    return vcgeq_f64(a, threshold);
  } else if constexpr (C == GuardCmp::kEq) {
    return vceqq_f64(a, threshold);
  } else {
    // No vcneq; invert the equality mask.
    return veorq_u64(vceqq_f64(a, threshold), vdupq_n_u64(~0ull));
  }
}
#endif

// ---- elapsed gather (guard kernels) -----------------------------------
// out[k] = event.field - slots[lane_k * stride + slot], the canonical
// elapsed-time guard operand. The event-field switch is loop-invariant but
// events are AoS host objects, so this stays a gather; the payoff is that
// the subsequent compare-select runs over the contiguous `out`.

inline void GatherElapsedIndexed(const MonitorEvent* const* __restrict events,
                                 const std::uint32_t* __restrict lanes, std::uint32_t len,
                                 EventField field, const double* __restrict slots,
                                 std::uint32_t stride, std::uint16_t slot,
                                 double* __restrict out) {
  for (std::uint32_t k = 0; k < len; ++k) {
    const std::uint32_t lane = lanes[k];
    out[k] = VmFieldValue(field, *events[lane]) -
             slots[static_cast<std::size_t>(lane) * stride + slot];
  }
}

inline void GatherElapsedDense(const MonitorEvent* const* __restrict events,
                               std::uint32_t base, std::uint32_t len, EventField field,
                               const double* __restrict slots, std::uint32_t stride,
                               std::uint16_t slot, double* __restrict out) {
  for (std::uint32_t k = 0; k < len; ++k) {
    const std::uint32_t lane = base + k;
    out[k] = VmFieldValue(field, *events[lane]) -
             slots[static_cast<std::size_t>(lane) * stride + slot];
  }
}

// ---- guard compare-select ---------------------------------------------
// current[lane_k] = Pass(elapsed[k]) ? to : current[lane_k]. Guard failure
// self-loops by construction (the batch VM only summarizes
// kGuardElapsedCommit when the fail path is a bare kNoMatch), so "leave
// the state untouched" is the complete failure semantics.

template <GuardCmp C>
inline void GuardSelectIndexed(const double* __restrict elapsed,
                               const std::uint32_t* __restrict lanes, std::uint32_t len,
                               double threshold, std::uint16_t to,
                               std::uint16_t* __restrict current) {
#if defined(ARTEMIS_SIMD_SSE2)
  const __m128d thr = _mm_set1_pd(threshold);
  std::uint32_t k = 0;
  for (; k + 2 <= len; k += 2) {
    const int bits = _mm_movemask_pd(Mask<C>(_mm_loadu_pd(elapsed + k), thr));
    if (bits & 1) {
      current[lanes[k]] = to;
    }
    if (bits & 2) {
      current[lanes[k + 1]] = to;
    }
  }
  for (; k < len; ++k) {
    if (Pass<C>(elapsed[k], threshold)) {
      current[lanes[k]] = to;
    }
  }
#else
  for (std::uint32_t k = 0; k < len; ++k) {
    const std::uint16_t kept = current[lanes[k]];
    current[lanes[k]] = Pass<C>(elapsed[k], threshold) ? to : kept;
  }
#endif
}

template <GuardCmp C>
inline void GuardSelectDense(const double* __restrict elapsed, std::uint32_t len,
                             double threshold, std::uint16_t to,
                             std::uint16_t* __restrict current) {
#if defined(ARTEMIS_SIMD_SSE2)
  const __m128d thr = _mm_set1_pd(threshold);
  const __m128i vto = _mm_set1_epi16(static_cast<short>(to));
  const __m128i bit_of_lane =
      _mm_set_epi16(1 << 7, 1 << 6, 1 << 5, 1 << 4, 1 << 3, 1 << 2, 1 << 1, 1 << 0);
  std::uint32_t k = 0;
  for (; k + 8 <= len; k += 8) {
    int bits = _mm_movemask_pd(Mask<C>(_mm_loadu_pd(elapsed + k), thr));
    bits |= _mm_movemask_pd(Mask<C>(_mm_loadu_pd(elapsed + k + 2), thr)) << 2;
    bits |= _mm_movemask_pd(Mask<C>(_mm_loadu_pd(elapsed + k + 4), thr)) << 4;
    bits |= _mm_movemask_pd(Mask<C>(_mm_loadu_pd(elapsed + k + 6), thr)) << 6;
    // Expand the 8 compare bits to a 16-bit-per-lane mask and blend the
    // destination state over the kept states in one store.
    const __m128i vbits = _mm_set1_epi16(static_cast<short>(bits));
    const __m128i mask = _mm_cmpeq_epi16(_mm_and_si128(vbits, bit_of_lane), bit_of_lane);
    const __m128i kept = _mm_loadu_si128(reinterpret_cast<const __m128i*>(current + k));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(current + k),
                     _mm_or_si128(_mm_and_si128(mask, vto), _mm_andnot_si128(mask, kept)));
  }
  for (; k < len; ++k) {
    if (Pass<C>(elapsed[k], threshold)) {
      current[k] = to;
    }
  }
#elif defined(ARTEMIS_SIMD_NEON)
  const float64x2_t thr = vdupq_n_f64(threshold);
  std::uint32_t k = 0;
  for (; k + 2 <= len; k += 2) {
    const uint64x2_t mask = Mask<C>(vld1q_f64(elapsed + k), thr);
    if (vgetq_lane_u64(mask, 0)) {
      current[k] = to;
    }
    if (vgetq_lane_u64(mask, 1)) {
      current[k + 1] = to;
    }
  }
  for (; k < len; ++k) {
    if (Pass<C>(elapsed[k], threshold)) {
      current[k] = to;
    }
  }
#else
  for (std::uint32_t k = 0; k < len; ++k) {
    const std::uint16_t kept = current[k];
    current[k] = Pass<C>(elapsed[k], threshold) ? to : kept;
  }
#endif
}

// ---- unconditional commit ---------------------------------------------

inline void CommitIndexed(const std::uint32_t* __restrict lanes, std::uint32_t len,
                          std::uint16_t to, std::uint16_t* __restrict current) {
  for (std::uint32_t k = 0; k < len; ++k) {
    current[lanes[k]] = to;
  }
}

inline void CommitDense(std::uint32_t len, std::uint16_t to,
                        std::uint16_t* __restrict current) {
  for (std::uint32_t k = 0; k < len; ++k) {
    current[k] = to;
  }
}

// ---- store-field + commit ---------------------------------------------
// slots[lane * stride + slot] = event.field; current[lane] = to. No
// compare, so one fused sweep per cohort.

inline void StoreFieldCommitIndexed(const MonitorEvent* const* __restrict events,
                                    const std::uint32_t* __restrict lanes, std::uint32_t len,
                                    EventField field, std::uint16_t slot, std::uint16_t to,
                                    double* __restrict slots, std::uint32_t stride,
                                    std::uint16_t* __restrict current) {
  for (std::uint32_t k = 0; k < len; ++k) {
    const std::uint32_t lane = lanes[k];
    slots[static_cast<std::size_t>(lane) * stride + slot] = VmFieldValue(field, *events[lane]);
    current[lane] = to;
  }
}

inline void StoreFieldCommitDense(const MonitorEvent* const* __restrict events,
                                  std::uint32_t base, std::uint32_t len, EventField field,
                                  std::uint16_t slot, std::uint16_t to,
                                  double* __restrict slots, std::uint32_t stride,
                                  std::uint16_t* __restrict current) {
  for (std::uint32_t k = 0; k < len; ++k) {
    const std::uint32_t lane = base + k;
    slots[static_cast<std::size_t>(lane) * stride + slot] = VmFieldValue(field, *events[lane]);
    current[lane] = to;
  }
}

}  // namespace artemis::batch_kernels

#endif  // SRC_MONITOR_BATCH_KERNELS_H_
