// Batch entry point to the compiled monitor VM: advances N lanes of the
// SAME compiled machine over N independent event cursors in one flat
// structure-of-arrays pass (src/fleet uses one lane per simulated device).
//
// Why a separate engine instead of N CompiledMonitor objects: the scalar
// path pays a virtual Monitor::Step call, a shared_ptr-held machine
// indirection, and a cache-scattered heap object per device per event.
// Here the per-lane state is three dense arrays owned by one object —
//
//   current_[lane]              control state ids, contiguous
//   slots_[lane * stride + s]   variable blocks, one cache-dense 2-D block
//   (bytecode/dispatch shared)  read-only, hot in L1 across all lanes
//
// — and a step is organized around handler *classes*. At construction
// every dispatch-table entry's handler program is classified once:
//
//   kSelfLoop           program is a bare kNoMatch — the event is a no-op
//   kCommit             unconditional state change (guard-free, empty body)
//   kStoreFieldCommit   `slot = event.field; state = to` (the fused
//                       store-commit superinstruction)
//   kGuardElapsedCommit `if (event.field - slot <cmp> K) state = to` where
//                       guard failure self-loops — the canonical MITD/MSS
//                       time-window transition
//   kGeneral            anything else — falls back to the shared bytecode
//                       core (vm_core.h), bit-identical to the scalar path
//
// StepBatch is a three-phase cohort pass over that classification:
//
//   1. partition — each live lane resolves its (state, kind, task) to a
//      dispatch entry and reads a 1-byte class code. kSelfLoop lanes are
//      dropped on the spot (most fleet traffic, per the runtime traffic
//      counters below); kGeneral lanes queue in lane order; the three
//      vector classes counting-sort into per-entry cohorts.
//   2. cohort kernels — each cohort shares ONE pre-decoded Summary, so the
//      Summary load, the class switch, and the guard-compare branch all
//      hoist out of the inner loop. What remains is a straight-line
//      gather / compare-select / scatter over contiguous uint16 states and
//      double slots (src/monitor/batch_kernels.h; portable restrict loops,
//      or explicit SSE2/NEON under ARTEMIS_SIMD — bit-identical either
//      way). Contiguous cohorts (all lanes in lockstep) take a dense
//      kernel with no index indirection at all.
//   3. general fallback — queued lanes run the shared bytecode core in
//      lane order, so failure records append exactly as the scalar path
//      would emit them.
//
// Because classification is per (EventKind, TaskId) *column*, the VM also
// knows statically which columns are self-loops in EVERY state —
// ColumnDead below. src/fleet consults it (across all machines of a spec)
// to elide monitor-irrelevant fleet traffic before it ever reaches a lane:
// the paper's adaptability story means most monitors ignore most events,
// and a dead column is proof the event cannot touch lane state.
//
// Optional runtime traffic counters (EnableTraffic) count events per
// dispatch entry, answering "which columns are actually hot on this
// workload" — surfaced through FleetOutcome and `artemisc fleet --stats`.
//
// Lanes are independent: no kernel reads another lane's state, so cohort
// execution order cannot change results, and the hot-swap migration entry
// point (ApplyMigrationFrom, used by src/swap) composes with the cohort
// machinery trivially — the partition is rebuilt from current_[] on every
// pass, never cached across calls. Equivalence with CompiledMonitor is
// enforced lane-by-lane by the differential fuzz test in
// tests/compiled_monitor_test.cc, including forced cohort-boundary shapes;
// semantics of a lane are exactly CompiledMonitor's (same dispatch, same
// programs, same reset rules).
#ifndef SRC_MONITOR_COMPILED_BATCH_H_
#define SRC_MONITOR_COMPILED_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/compile.h"
#include "src/kernel/checker.h"
#include "src/monitor/vm_core.h"

namespace artemis {

// String-free per-lane step result. `action`/`target_path` mirror the
// FailRecord; `fail_index` resolves the property label on demand via
// BatchCompiledMonitor::fail_record (verdicts are rare, strings are not
// worth carrying through the hot pass).
struct BatchVerdict {
  ActionType action = ActionType::kNone;
  PathId target_path = kNoPath;
  std::uint32_t fail_index = 0;
  bool failed = false;
};

// One failing lane from a StepBatch pass. The batch step reports failures
// as a compact append-only list instead of a per-lane output array: most
// events fail nothing, and clearing N verdict slots per machine per event
// would cost more cache traffic than the stepping itself.
struct BatchFailure {
  std::uint32_t lane = 0;
  ActionType action = ActionType::kNone;
  PathId target_path = kNoPath;
  std::uint32_t fail_index = 0;
};

class BatchCompiledMonitor {
 public:
  // How a dispatch-table handler program was classified (test/bench
  // introspection; the counts are what the speedup claim rests on).
  enum class HandlerClass : std::uint8_t {
    kSelfLoop = 0,
    kCommit,
    kStoreFieldCommit,
    kGuardElapsedCommit,
    kGeneral,
  };
  static constexpr std::size_t kNumClasses = 5;

  BatchCompiledMonitor(std::shared_ptr<const CompiledMachine> machine, std::uint32_t lanes);

  std::uint32_t lanes() const { return lanes_; }
  const CompiledMachine& machine() const { return *machine_; }

  // Steps every lane i in [0, n): lane i consumes *events[i]; a null
  // events[i] marks an exhausted cursor and leaves the lane untouched.
  // Failing lanes are APPENDED to `failures` in lane order (the caller
  // clears it between passes); non-failing lanes write nothing. n must be
  // <= lanes().
  void StepBatch(const MonitorEvent* const* events, std::uint32_t n,
                 std::vector<BatchFailure>* failures);

  // Steps ONLY the listed lanes (`events` is still indexed by lane id).
  // Caller contract: `lane_list` is strictly ascending, and every listed
  // lane's events[lane] is non-null and within this machine's path scope —
  // the feed layer already proved both while building its per-pass live /
  // per-path lane lists, so the partition pass here skips the null and
  // scope tests entirely. Semantically identical to StepBatch restricted
  // to the listed lanes (unlisted lanes are untouched, exactly like a null
  // cursor); equivalence is pinned by the differential fuzz tests.
  void StepBatchLanes(const MonitorEvent* const* events, const std::uint32_t* lane_list,
                      std::uint32_t count, std::vector<BatchFailure>* failures);

  // Scalar single-lane step with CompiledMonitor::Step semantics —
  // always runs the full bytecode core, bypassing the cohort fast path.
  // Reference implementation for the differential tests.
  bool StepLaneGeneral(std::uint32_t lane, const MonitorEvent& event, BatchVerdict* out);

  void HardResetAll();
  void HardResetLane(std::uint32_t lane);
  void OnPathRestartLane(std::uint32_t lane, PathId path);

  // Hot-swap entry point (src/swap): bulk-migrates every lane's FRAM state
  // from the retiring image's batch VM of the SAME property. Per lane:
  // the control state becomes state_map[old state id] (the migration
  // plan's old->new map, defaulting unmapped states to this machine's
  // initial), and slot s takes the old lane's slot_sources[s] when >= 0 or
  // resets to initial_slots[s]. `old` must have the same lane count.
  // Composes with cohort stepping by construction: the lane permutation is
  // per-pass scratch, so migrated states simply partition differently on
  // the next StepBatch (regression-pinned in tests/hotswap_test.cc).
  void ApplyMigrationFrom(const BatchCompiledMonitor& old,
                          const std::vector<std::uint16_t>& state_map,
                          const std::vector<int>& slot_sources);

  const FailRecord& fail_record(std::uint32_t fail_index) const {
    return machine_->fail_pool[fail_index];
  }

  // ---- dead-column elision ---------------------------------------------
  // A (kind, task) column is dead when EVERY state's handler for it is
  // kSelfLoop: an event on that column provably cannot change any lane's
  // state, slots, or verdicts. Task ids above the machine's dispatch range
  // resolve to the shared any-task row, exactly like dispatch does.
  bool ColumnDead(EventKind kind, TaskId task) const {
    const std::uint32_t cols = machine_->max_task + 2u;
    const auto t = std::min(static_cast<std::uint32_t>(task), cols - 1u);
    return dead_cols_[static_cast<std::uint32_t>(kind) * cols + t] != 0;
  }
  // Dead / total (kind, task) columns, for static elision-rate reporting.
  std::uint32_t dead_column_count() const { return dead_column_count_; }
  std::uint32_t column_count() const { return static_cast<std::uint32_t>(dead_cols_.size()); }

  // ---- runtime traffic profiling ---------------------------------------
  // Off by default (the partition pass pays one predictable branch when
  // off). When enabled, every dispatched lane-event increments its
  // entry's counter — the measured dispatch-entry mix, as opposed to the
  // static ClassHistogram. Events elided by the fleet layer's dead-column
  // check never reach StepBatch and are counted there, not here.
  void EnableTraffic();
  bool traffic_enabled() const { return !traffic_.empty(); }
  // Per-entry event counts, indexed like entries: [0, dispatch.size())
  // are dispatch entries, then one any-task row per state. Empty when
  // disabled.
  const std::vector<std::uint64_t>& EntryTraffic() const { return traffic_; }
  // Runtime events per handler class (kSelfLoop..kGeneral), summed from
  // EntryTraffic. All zeros when disabled.
  std::vector<std::uint64_t> ClassTraffic() const;

  // Entry introspection for traffic reports. task == -1 marks the any-task
  // column (the handler is the state's shared any_handler; the kind is the
  // one the event actually carried).
  struct EntryInfo {
    std::uint16_t state = 0;
    int kind = 0;
    int task = 0;
  };
  std::uint32_t entry_count() const { return static_cast<std::uint32_t>(class_of_.size()); }
  EntryInfo DecodeEntry(std::uint32_t entry) const;
  HandlerClass EntryClass(std::uint32_t entry) const {
    return static_cast<HandlerClass>(class_of_[entry]);
  }

  // Test hooks, mirroring CompiledMonitor's.
  const std::string& lane_state(std::uint32_t lane) const {
    return machine_->state_names[current_[lane]];
  }
  double LaneVarValue(std::uint32_t lane, const std::string& name) const;
  HandlerClass ClassOf(std::uint16_t state, EventKind kind, TaskId task) const;
  // Dispatch-table entries per class, in HandlerClass order (bench report).
  std::vector<std::uint64_t> ClassHistogram() const;

 private:
  // Compact pre-decoded handler form, one per dispatch-table entry (plus
  // one per-state any_handler row for task ids above max_task).
  struct Summary {
    HandlerClass cls = HandlerClass::kGeneral;
    OpCode guard_op = OpCode::kNoMatch;  // kGuardElapsedCommit: the fused opcode
    EventField field = EventField::kTimestamp;
    std::uint16_t slot = 0;
    std::uint16_t to = 0;
    double threshold = 0.0;
    std::uint32_t pc = 0;  // program entry (kGeneral fallback)
  };

  // One lane headed for a vector-class cohort this pass.
  struct BucketedLane {
    std::uint32_t lane = 0;
    std::uint32_t entry = 0;
  };
  // One lane headed for the bytecode fallback this pass.
  struct GeneralLane {
    std::uint32_t lane = 0;
    std::uint32_t pc = 0;
  };

  Summary Summarize(std::uint32_t pc) const;
  // Entry ids live in the PADDED table: [state][kind][max_task + 2], the
  // trailing column standing in for the state's any-task handler. The
  // padding is what makes the partition pass branch-free — any task id
  // clamps onto a valid column with one cmov, no range test.
  const Summary& SummaryByEntry(std::uint32_t entry) const {
    const std::uint32_t span = machine_->max_task + 2u;
    const std::uint32_t col = entry % span;
    return col == span - 1u ? any_summaries_[entry / span / 2u]
                            : summaries_[(entry / span) * (span - 1u) + col];
  }
  const Summary& SummaryFor(std::uint16_t state, EventKind kind, TaskId task) const {
    const auto t = static_cast<std::uint32_t>(task);
    if (t > machine_->max_task) {
      return any_summaries_[state];
    }
    const std::uint32_t row =
        (static_cast<std::uint32_t>(state) * 2u + static_cast<std::uint32_t>(kind));
    return summaries_[row * (machine_->max_task + 1u) + t];
  }

  // Pass 1 of StepBatch, instantiated with and without traffic counting so
  // the profiling check costs nothing per lane when disabled, and with and
  // without a lane list (kList skips the null/scope tests per the
  // StepBatchLanes caller contract). `list` is ignored when !kList.
  template <bool kTraffic, bool kList>
  void PartitionPass(const MonitorEvent* const* events, const std::uint32_t* list,
                     std::uint32_t n);
  // Passes 2-4, shared by StepBatch and StepBatchLanes.
  void FinishStep(const MonitorEvent* const* events, std::vector<BatchFailure>* failures);

  void RunCohort(const Summary& s, const std::uint32_t* lanes, std::uint32_t len,
                 const MonitorEvent* const* events);

  double* lane_slots(std::uint32_t lane) { return slots_.data() + lane * stride_; }
  const double* lane_slots(std::uint32_t lane) const { return slots_.data() + lane * stride_; }

  std::shared_ptr<const CompiledMachine> machine_;
  std::uint32_t lanes_ = 0;
  std::uint32_t stride_ = 0;  // doubles per lane slot block (>= 1)
  std::vector<Summary> summaries_;      // parallel to machine_->dispatch
  std::vector<Summary> any_summaries_;  // indexed by state id
  // 1-byte class code per entry (dispatch entries, then any rows): the
  // partition pass touches only this, not the 48-byte Summary.
  std::vector<std::uint8_t> class_of_;
  // Program entry per padded entry id, so queueing a kGeneral lane reads a
  // hot 4-byte table instead of pulling the entry's whole Summary into the
  // partition pass.
  std::vector<std::uint32_t> pc_of_;
  // Per (kind, task) column: 1 when every state self-loops. Laid out
  // [kind][task] with one extra task slot for the any-task row.
  std::vector<std::uint8_t> dead_cols_;
  std::uint32_t dead_column_count_ = 0;
  std::vector<std::uint16_t> current_;  // [lane]
  std::vector<double> slots_;           // [lane * stride_ + slot]
  std::vector<double> stack_;           // scratch for the kGeneral fallback

  // ---- per-pass scratch (sized once; no hot-loop allocation) ----------
  std::vector<BucketedLane> bucketed_;  // vector-class lanes, lane order
  std::vector<GeneralLane> general_;    // bytecode-fallback lanes, lane order
  std::vector<std::uint32_t> counts_;   // [entry] cohort sizes this pass
  std::vector<std::uint32_t> offsets_;  // [entry] counting-sort cursors
  std::vector<std::uint32_t> touched_;  // entries with a cohort this pass
  std::vector<std::uint32_t> perm_;     // lane permutation, cohort-grouped
  std::vector<double> elapsed_;         // gathered guard operands
  std::vector<std::uint64_t> traffic_;  // [entry] runtime counters (opt-in)
};

}  // namespace artemis

#endif  // SRC_MONITOR_COMPILED_BATCH_H_
