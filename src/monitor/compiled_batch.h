// Batch entry point to the compiled monitor VM: advances N lanes of the
// SAME compiled machine over N independent event cursors in one flat
// structure-of-arrays pass (src/fleet uses one lane per simulated device).
//
// Why a separate engine instead of N CompiledMonitor objects: the scalar
// path pays a virtual Monitor::Step call, a shared_ptr-held machine
// indirection, and a cache-scattered heap object per device per event.
// Here the per-lane state is three dense arrays owned by one object —
//
//   current_[lane]              control state ids, contiguous
//   slots_[lane * stride + s]   variable blocks, one cache-dense 2-D block
//   (bytecode/dispatch shared)  read-only, hot in L1 across all lanes
//
// — and dispatch is a table lookup plus a switch over five *handler
// classes* instead of a bytecode interpretation. At construction every
// dispatch-table entry's handler program is classified once:
//
//   kSelfLoop           program is a bare kNoMatch — the event is a no-op
//   kCommit             unconditional state change (guard-free, empty body)
//   kStoreFieldCommit   `slot = event.field; state = to` (the fused
//                       store-commit superinstruction)
//   kGuardElapsedCommit `if (event.field - slot <cmp> K) state = to` where
//                       guard failure self-loops — the canonical MITD/MSS
//                       time-window transition
//   kGeneral            anything else — falls back to the shared bytecode
//                       core (vm_core.h), bit-identical to the scalar path
//
// On the paper's three apps every hot-loop handler lands in the first
// four classes, so the per-event work is a summary load and one or two
// arithmetic ops on dense arrays — no bytecode fetch, no virtual call,
// autovectorizable by class. Equivalence with CompiledMonitor is enforced
// lane-by-lane by the differential fuzz test in
// tests/compiled_monitor_test.cc; semantics of a lane are exactly
// CompiledMonitor's (same dispatch, same programs, same reset rules).
#ifndef SRC_MONITOR_COMPILED_BATCH_H_
#define SRC_MONITOR_COMPILED_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/compile.h"
#include "src/kernel/checker.h"
#include "src/monitor/vm_core.h"

namespace artemis {

// String-free per-lane step result. `action`/`target_path` mirror the
// FailRecord; `fail_index` resolves the property label on demand via
// BatchCompiledMonitor::fail_record (verdicts are rare, strings are not
// worth carrying through the hot pass).
struct BatchVerdict {
  ActionType action = ActionType::kNone;
  PathId target_path = kNoPath;
  std::uint32_t fail_index = 0;
  bool failed = false;
};

// One failing lane from a StepBatch pass. The batch step reports failures
// as a compact append-only list instead of a per-lane output array: most
// events fail nothing, and clearing N verdict slots per machine per event
// would cost more cache traffic than the stepping itself.
struct BatchFailure {
  std::uint32_t lane = 0;
  ActionType action = ActionType::kNone;
  PathId target_path = kNoPath;
  std::uint32_t fail_index = 0;
};

class BatchCompiledMonitor {
 public:
  // How a dispatch-table handler program was classified (test/bench
  // introspection; the counts are what the speedup claim rests on).
  enum class HandlerClass : std::uint8_t {
    kSelfLoop = 0,
    kCommit,
    kStoreFieldCommit,
    kGuardElapsedCommit,
    kGeneral,
  };

  BatchCompiledMonitor(std::shared_ptr<const CompiledMachine> machine, std::uint32_t lanes);

  std::uint32_t lanes() const { return lanes_; }
  const CompiledMachine& machine() const { return *machine_; }

  // Steps every lane i in [0, n): lane i consumes *events[i]; a null
  // events[i] marks an exhausted cursor and leaves the lane untouched.
  // Failing lanes are APPENDED to `failures` in lane order (the caller
  // clears it between passes); non-failing lanes write nothing. n must be
  // <= lanes().
  void StepBatch(const MonitorEvent* const* events, std::uint32_t n,
                 std::vector<BatchFailure>* failures);

  // Scalar single-lane step with CompiledMonitor::Step semantics —
  // always runs the full bytecode core, bypassing the summary fast path.
  // Reference implementation for the differential tests.
  bool StepLaneGeneral(std::uint32_t lane, const MonitorEvent& event, BatchVerdict* out);

  void HardResetAll();
  void HardResetLane(std::uint32_t lane);
  void OnPathRestartLane(std::uint32_t lane, PathId path);

  // Hot-swap entry point (src/swap): bulk-migrates every lane's FRAM state
  // from the retiring image's batch VM of the SAME property. Per lane:
  // the control state becomes state_map[old state id] (the migration
  // plan's old->new map, defaulting unmapped states to this machine's
  // initial), and slot s takes the old lane's slot_sources[s] when >= 0 or
  // resets to initial_slots[s]. `old` must have the same lane count.
  void ApplyMigrationFrom(const BatchCompiledMonitor& old,
                          const std::vector<std::uint16_t>& state_map,
                          const std::vector<int>& slot_sources);

  const FailRecord& fail_record(std::uint32_t fail_index) const {
    return machine_->fail_pool[fail_index];
  }

  // Test hooks, mirroring CompiledMonitor's.
  const std::string& lane_state(std::uint32_t lane) const {
    return machine_->state_names[current_[lane]];
  }
  double LaneVarValue(std::uint32_t lane, const std::string& name) const;
  HandlerClass ClassOf(std::uint16_t state, EventKind kind, TaskId task) const;
  // Dispatch-table entries per class, in HandlerClass order (bench report).
  std::vector<std::uint64_t> ClassHistogram() const;

 private:
  // Compact pre-decoded handler form, one per dispatch-table entry (plus
  // one per-state any_handler row for task ids above max_task).
  struct Summary {
    HandlerClass cls = HandlerClass::kGeneral;
    OpCode guard_op = OpCode::kNoMatch;  // kGuardElapsedCommit: the fused opcode
    EventField field = EventField::kTimestamp;
    std::uint16_t slot = 0;
    std::uint16_t to = 0;
    double threshold = 0.0;
    std::uint32_t pc = 0;  // program entry (kGeneral fallback)
  };

  Summary Summarize(std::uint32_t pc) const;
  const Summary& SummaryFor(std::uint16_t state, EventKind kind, TaskId task) const {
    const auto t = static_cast<std::uint32_t>(task);
    if (t > machine_->max_task) {
      return any_summaries_[state];
    }
    const std::uint32_t row =
        (static_cast<std::uint32_t>(state) * 2u + static_cast<std::uint32_t>(kind));
    return summaries_[row * (machine_->max_task + 1u) + t];
  }

  double* lane_slots(std::uint32_t lane) { return slots_.data() + lane * stride_; }
  const double* lane_slots(std::uint32_t lane) const { return slots_.data() + lane * stride_; }

  std::shared_ptr<const CompiledMachine> machine_;
  std::uint32_t lanes_ = 0;
  std::uint32_t stride_ = 0;  // doubles per lane slot block (>= 1)
  std::vector<Summary> summaries_;      // parallel to machine_->dispatch
  std::vector<Summary> any_summaries_;  // indexed by state id
  std::vector<std::uint16_t> current_;  // [lane]
  std::vector<double> slots_;           // [lane * stride_ + slot]
  std::vector<double> stack_;           // scratch for the kGeneral fallback
};

}  // namespace artemis

#endif  // SRC_MONITOR_COMPILED_BATCH_H_
