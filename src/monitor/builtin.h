// Builtin ("generated C") monitor backend: hand-laid-out property checkers
// that mirror the structures of Figure 10 (MITD_t with timeLimit /
// dependentTask / action / max / maxAction, etc). Semantically equivalent to
// the interpreted machines — equivalence is property-tested — but with the
// straight-line step cost the paper's generated code would have.
#ifndef SRC_MONITOR_BUILTIN_H_
#define SRC_MONITOR_BUILTIN_H_

#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/kernel/app_graph.h"
#include "src/monitor/monitor.h"
#include "src/spec/ast.h"

namespace artemis {

// Base with shared config plumbing. The Path qualifier plays two roles that
// may diverge (Table 1): as the *target* of path actions, and — only when
// the anchor task actually lies on that path (path merging) — as an event
// *scope*. A cross-path dependency ("collect 4 from `count`, restart path 1"
// where the anchor is on path 2) has a target but no scope.
class BuiltinMonitor : public Monitor {
 public:
  BuiltinMonitor(std::string label, TaskId task, ActionType action, PathId target_path,
                 PathId scope_path)
      : label_(std::move(label)),
        task_(task),
        action_(action),
        target_path_(target_path),
        scope_path_(scope_path) {}

  const std::string& label() const override { return label_; }
  double StepCycles(const CostModel& costs) const override {
    return costs.builtin_step_cycles;
  }
  void OnPathRestart(PathId) override {}

 protected:
  bool InScope(const MonitorEvent& event) const {
    return scope_path_ == kNoPath || event.path == scope_path_;
  }
  void FillVerdict(MonitorVerdict* verdict, ActionType action,
                   const std::string& suffix = "") const {
    verdict->action = action;
    verdict->target_path = target_path_;
    verdict->property = label_ + suffix;
  }

  std::string label_;
  TaskId task_;
  ActionType action_;
  PathId target_path_;
  PathId scope_path_;
};

// maxTries: N successive start attempts without completion.
class MaxTriesMonitor : public BuiltinMonitor {
 public:
  MaxTriesMonitor(std::string label, TaskId task, std::uint64_t max, ActionType action,
                  PathId target_path, PathId scope_path = kNoPath)
      : BuiltinMonitor(std::move(label), task, action, target_path, scope_path), max_(max) {}

  bool Step(const MonitorEvent& event, MonitorVerdict* verdict) override;
  void HardReset() override { tries_ = 0; }
  std::size_t FramBytes() const override { return sizeof(tries_) + sizeof(max_); }

 private:
  std::uint64_t max_;
  std::uint64_t tries_ = 0;  // FRAM
};

// maxDuration: total elapsed time between first start and completion.
class MaxDurationMonitor : public BuiltinMonitor {
 public:
  MaxDurationMonitor(std::string label, TaskId task, SimDuration limit, ActionType action,
                     PathId target_path, PathId scope_path = kNoPath)
      : BuiltinMonitor(std::move(label), task, action, target_path, scope_path),
        limit_(limit) {}

  bool Step(const MonitorEvent& event, MonitorVerdict* verdict) override;
  void HardReset() override {
    started_ = false;
    start_ = 0;
  }
  void OnPathRestart(PathId path) override;
  std::size_t FramBytes() const override {
    return sizeof(limit_) + sizeof(start_) + sizeof(started_);
  }

 private:
  SimDuration limit_;
  SimTime start_ = 0;     // FRAM
  bool started_ = false;  // FRAM
};

// collect: the dependent task must have completed `count` times before the
// anchor task starts. Accumulates across failures by default (see
// ir/lowering.h for the Figure 7 deviation note).
class CollectMonitor : public BuiltinMonitor {
 public:
  CollectMonitor(std::string label, TaskId task, TaskId dep, std::uint64_t count,
                 ActionType action, PathId target_path, bool reset_on_fail,
                 PathId scope_path = kNoPath)
      : BuiltinMonitor(std::move(label), task, action, target_path, scope_path),
        dep_(dep),
        count_(count),
        reset_on_fail_(reset_on_fail) {}

  bool Step(const MonitorEvent& event, MonitorVerdict* verdict) override;
  void HardReset() override { have_ = 0; }
  std::size_t FramBytes() const override { return sizeof(have_) + sizeof(count_); }

  std::uint64_t collected() const { return have_; }

 private:
  TaskId dep_;
  std::uint64_t count_;
  bool reset_on_fail_;
  std::uint64_t have_ = 0;  // FRAM
};

// MITD with maxAttempt escalation (Figure 10's MITD_t).
class MitdMonitor final : public BuiltinMonitor {
 public:
  MitdMonitor(std::string label, TaskId task, TaskId dep, SimDuration limit, ActionType action,
              std::uint32_t max_attempt, ActionType max_action, PathId target_path,
              PathId scope_path = kNoPath)
      : BuiltinMonitor(std::move(label), task, action, target_path, scope_path),
        dep_(dep),
        limit_(limit),
        max_attempt_(max_attempt),
        max_action_(max_action) {}

  bool Step(const MonitorEvent& event, MonitorVerdict* verdict) override;
  void HardReset() override {
    waiting_ = false;
    end_dep_ = 0;
    attempts_ = 0;
  }
  std::size_t FramBytes() const override {
    return sizeof(limit_) + sizeof(end_dep_) + sizeof(attempts_) + sizeof(waiting_);
  }

  std::uint32_t attempts() const { return attempts_; }

 private:
  TaskId dep_;
  SimDuration limit_;
  std::uint32_t max_attempt_;
  ActionType max_action_;
  bool waiting_ = false;       // FRAM: true == WaitStartA
  SimTime end_dep_ = 0;        // FRAM
  std::uint32_t attempts_ = 0;  // FRAM
};

// period: gap between consecutive starts must not exceed period + jitter.
class PeriodMonitor : public BuiltinMonitor {
 public:
  PeriodMonitor(std::string label, TaskId task, SimDuration period, SimDuration jitter,
                ActionType action, PathId target_path, PathId scope_path = kNoPath)
      : BuiltinMonitor(std::move(label), task, action, target_path, scope_path),
        bound_(period + jitter) {}

  bool Step(const MonitorEvent& event, MonitorVerdict* verdict) override;
  void HardReset() override {
    started_ = false;
    last_ = 0;
  }
  std::size_t FramBytes() const override {
    return sizeof(bound_) + sizeof(last_) + sizeof(started_);
  }

 private:
  SimDuration bound_;
  SimTime last_ = 0;      // FRAM
  bool started_ = false;  // FRAM
};

// dpData: the monitored variable must stay within [lo, hi].
class DpDataMonitor : public BuiltinMonitor {
 public:
  DpDataMonitor(std::string label, TaskId task, double lo, double hi, ActionType action,
                PathId target_path, PathId scope_path = kNoPath)
      : BuiltinMonitor(std::move(label), task, action, target_path, scope_path),
        lo_(lo),
        hi_(hi) {}

  bool Step(const MonitorEvent& event, MonitorVerdict* verdict) override;
  void HardReset() override {}
  std::size_t FramBytes() const override { return sizeof(lo_) + sizeof(hi_); }

 private:
  double lo_, hi_;
};

// minEnergy (Section 4.2.2 extension): stored-energy fraction at task start.
class MinEnergyMonitor : public BuiltinMonitor {
 public:
  MinEnergyMonitor(std::string label, TaskId task, double fraction, ActionType action,
                   PathId target_path, PathId scope_path = kNoPath)
      : BuiltinMonitor(std::move(label), task, action, target_path, scope_path),
        fraction_(fraction) {}

  bool Step(const MonitorEvent& event, MonitorVerdict* verdict) override;
  void HardReset() override {}
  std::size_t FramBytes() const override { return sizeof(fraction_); }

 private:
  double fraction_;
};

// Builds the builtin monitor for one validated property.
StatusOr<std::unique_ptr<Monitor>> MakeBuiltinMonitor(const PropertyAst& property,
                                                      const std::string& task_name,
                                                      const AppGraph& graph,
                                                      bool collect_reset_on_fail = false);

}  // namespace artemis

#endif  // SRC_MONITOR_BUILTIN_H_
