#include "src/monitor/monitor_set.h"

#include "src/ir/compile.h"
#include "src/monitor/builtin.h"
#include "src/monitor/compiled.h"
#include "src/monitor/interp.h"
#include "src/sim/mcu.h"

namespace artemis {

const char* MonitorBackendName(MonitorBackend backend) {
  switch (backend) {
    case MonitorBackend::kInterpreted:
      return "interpreted";
    case MonitorBackend::kBuiltin:
      return "builtin";
    case MonitorBackend::kCompiled:
      return "compiled";
  }
  return "?";
}

const char* MonitorPlacementName(MonitorPlacement placement) {
  switch (placement) {
    case MonitorPlacement::kSeparate:
      return "separate";
    case MonitorPlacement::kInlined:
      return "inlined";
    case MonitorPlacement::kRemote:
      return "remote";
  }
  return "?";
}

std::size_t MonitorSet::InlinedTextBytes(std::size_t separate_text_bytes,
                                         std::size_t call_sites) {
  // Weaving duplicates the checking code at every event site; a small
  // fraction (the shared state declarations) is not duplicated.
  const std::size_t shared = separate_text_bytes / 5;
  return shared + (separate_text_bytes - shared) * (call_sites == 0 ? 1 : call_sites);
}

void MonitorSet::Add(std::unique_ptr<Monitor> monitor) {
  monitors_.push_back(std::move(monitor));
}

void MonitorSet::ReplaceMonitors(std::vector<std::unique_ptr<Monitor>> monitors) {
  // Only called at quiescence (no event mid-arbitration), so pending_ is
  // empty and the continuation is retired; the verdict cache and counters
  // survive so pre-swap events replay idempotently. The NVM arena keeps the
  // original registration: the swap stages the new image into the same
  // monitor region (docs/hotswap.md sizes it as max(old, new)).
  monitors_ = std::move(monitors);
  pending_.clear();
}

std::size_t MonitorSet::FramBytes() const {
  // Per-monitor state plus the set's own continuation + verdict cache.
  std::size_t bytes = sizeof(done_seq_) + sizeof(MonitorVerdict) + 16 /* continuation */;
  for (const auto& monitor : monitors_) {
    bytes += monitor->FramBytes();
    bytes += 24;  // property_t slot: action/path/task plumbing (Figure 10).
  }
  return bytes;
}

void MonitorSet::HardReset(Mcu& mcu) {
  if (!arena_registered_) {
    mcu.nvm().Allocate(MemOwner::kMonitor, FramBytes(), "monitor-set");
    arena_registered_ = true;
  }
  for (const auto& monitor : monitors_) {
    monitor->HardReset();
  }
  pending_.clear();
  done_seq_ = 0;
  has_cached_verdict_ = false;
  cached_verdict_ = MonitorVerdict{};
  continuation_.Finish();
}

void MonitorSet::Finalize(Mcu& mcu) {
  // Interrupted event processing is completed lazily: the kernel re-delivers
  // the pending event and OnEvent resumes from the saved cursor. The boot
  // pass just pays the bookkeeping read.
  if (continuation_.InProgress()) {
    mcu.ExecuteCycles(mcu.costs().timestamp_read_cycles, CostTag::kMonitor);
  }
}

CheckOutcome MonitorSet::OnEvent(const MonitorEvent& event, Mcu& mcu) {
  CheckOutcome outcome;
  // Per-event cycle cost for observability: everything the set accrues from
  // the interface crossing to the verdict (monitor bucket, or runtime bucket
  // when inlined). Published with the verdict event.
  const auto busy_now = [&mcu]() {
    return mcu.stats().busy_time[static_cast<int>(CostTag::kMonitor)] +
           mcu.stats().busy_time[static_cast<int>(CostTag::kRuntime)];
  };
  const SimDuration busy_before = obs_ != nullptr ? busy_now() : 0;
  // Interface-crossing cost depends on where the monitors live: inlined
  // checks pay nothing; remote monitors pay the radio round-trip; the
  // separate component pays the callMonitor call.
  ExecStatus call = ExecStatus::kOk;
  switch (placement_) {
    case MonitorPlacement::kSeparate:
      call = mcu.ExecuteCycles(mcu.costs().monitor_call_cycles, CostTag::kMonitor);
      break;
    case MonitorPlacement::kInlined:
      break;
    case MonitorPlacement::kRemote:
      call = mcu.Execute(radio_.tx_time, radio_.tx_power, CostTag::kMonitor);
      if (call == ExecStatus::kOk) {
        call = mcu.Execute(radio_.rx_time, radio_.rx_power, CostTag::kMonitor);
      }
      break;
  }
  if (call != ExecStatus::kOk) {
    outcome.status = static_cast<int>(call);
    return outcome;
  }
  // Exactly-once verdicts: a boundary retry after the verdict was computed
  // replays from the cache without re-stepping any monitor. The explicit
  // flag (not a seq sentinel) keeps this correct for an event with seq 0.
  if (has_cached_verdict_ && event.seq == done_seq_) {
    outcome.verdict = cached_verdict_;
    return outcome;
  }

  if (obs_ != nullptr) {
    // The event has crossed into the monitor component; value = the resume
    // cursor (non-zero when completing an interrupted delivery).
    obs_->Publish(obs::Event{.kind = obs::Kind::kMonitorDelivery,
                             .time = mcu.Now(),
                             .true_time = mcu.TrueNow(),
                             .task = event.task,
                             .path = event.path,
                             .seq = event.seq,
                             .value = static_cast<double>(continuation_.InProgress() ? 1 : 0),
                             .energy_fraction = event.energy_fraction,
                             .detail = EventKindName(event.kind)});
  }

  const std::uint32_t first = continuation_.Begin(event.seq);
  if (first == 0) {
    pending_.clear();
  }
  // Inlined checks are runtime time; remote checks run on the external
  // device and cost the local MCU nothing beyond the radio.
  const CostTag step_tag =
      placement_ == MonitorPlacement::kInlined ? CostTag::kRuntime : CostTag::kMonitor;
  for (std::size_t i = first; i < monitors_.size(); ++i) {
    ExecStatus step = ExecStatus::kOk;
    if (placement_ != MonitorPlacement::kRemote) {
      step = mcu.ExecuteCycles(monitors_[i]->StepCycles(mcu.costs()), step_tag);
    }
    if (step != ExecStatus::kOk) {
      // Power failed before this monitor durably consumed the event; the
      // continuation cursor still points at it, so the re-delivered event
      // resumes here.
      outcome.status = static_cast<int>(step);
      return outcome;
    }
    MonitorVerdict verdict;
    if (monitors_[i]->Step(event, &verdict)) {
      pending_.push_back(verdict);
    }
    continuation_.CompleteStep();
  }

  MonitorVerdict verdict = Arbitrate(pending_, policy_);
  if (verdict.violated()) {
    ++violations_reported_;
  }
  if (obs_ != nullptr) {
    // Arbitration outcome: value = how many monitors reported a failure on
    // this event (the candidates), duration = the per-event cycle cost.
    obs::Event out{.kind = obs::Kind::kMonitorVerdict,
                   .time = mcu.Now(),
                   .true_time = mcu.TrueNow(),
                   .task = event.task,
                   .path = event.path,
                   .seq = event.seq,
                   .duration = busy_now() - busy_before,
                   .value = static_cast<double>(pending_.size()),
                   .energy_fraction = event.energy_fraction,
                   .detail = verdict.property};
    if (verdict.violated()) {
      out.action = ActionTypeName(verdict.action);
    }
    obs_->Publish(out);
  }
  // Black-box the violation before retiring the event: the continuation
  // cursor is still at the end and the verdict cache is not yet written, so
  // if the append dies the re-delivered event re-arbitrates the same verdict
  // from the persisted pending_ set and retries the append.
  if (flight_ != nullptr && verdict.violated() &&
      !flight_->AppendVerdict(event.seq, event.task,
                              static_cast<std::uint8_t>(verdict.action),
                              verdict.target_path)) {
    outcome.status = static_cast<int>(ExecStatus::kPowerFailure);
    return outcome;
  }
  pending_.clear();
  continuation_.Finish();
  done_seq_ = event.seq;
  has_cached_verdict_ = true;
  cached_verdict_ = verdict;
  ++events_processed_;
  outcome.verdict = verdict;
  return outcome;
}

void MonitorSet::OnPathRestart(PathId path, Mcu& mcu) {
  const CostTag tag =
      placement_ == MonitorPlacement::kInlined ? CostTag::kRuntime : CostTag::kMonitor;
  mcu.ExecuteCycles(mcu.costs().action_apply_cycles, tag);
  for (const auto& monitor : monitors_) {
    monitor->OnPathRestart(path);
  }
  if (obs_ != nullptr) {
    obs_->Publish(obs::Event{.kind = obs::Kind::kMonitorReset,
                             .time = mcu.Now(),
                             .true_time = mcu.TrueNow(),
                             .path = path,
                             .value = static_cast<double>(monitors_.size())});
  }
}

StatusOr<std::unique_ptr<MonitorSet>> BuildMonitorSet(const SpecAst& spec, const AppGraph& graph,
                                                      MonitorBackend backend,
                                                      const LoweringOptions& lowering,
                                                      ArbitrationPolicy policy) {
  return BuildMonitorSet(spec, graph, backend, lowering, MonitorSetOptions{.policy = policy});
}

StatusOr<std::unique_ptr<MonitorSet>> BuildMonitorSet(const SpecAst& spec, const AppGraph& graph,
                                                      MonitorBackend backend,
                                                      const LoweringOptions& lowering,
                                                      const MonitorSetOptions& options) {
  auto set = std::make_unique<MonitorSet>(options);
  if (backend == MonitorBackend::kInterpreted || backend == MonitorBackend::kCompiled) {
    StatusOr<std::vector<StateMachine>> machines = LowerSpec(spec, graph, lowering);
    if (!machines.ok()) {
      return machines.status();
    }
    for (StateMachine& machine : machines.value()) {
      if (backend == MonitorBackend::kCompiled) {
        StatusOr<CompiledMachine> compiled = CompileStateMachine(machine);
        if (!compiled.ok()) {
          return compiled.status();
        }
        set->Add(std::make_unique<CompiledMonitor>(std::move(compiled).value()));
      } else {
        set->Add(std::make_unique<InterpretedMonitor>(std::move(machine)));
      }
    }
    return set;
  }
  for (const TaskBlockAst& block : spec.blocks) {
    for (const PropertyAst& property : block.properties) {
      StatusOr<std::unique_ptr<Monitor>> monitor =
          MakeBuiltinMonitor(property, block.task, graph, lowering.collect_reset_on_fail);
      if (!monitor.ok()) {
        return monitor.status();
      }
      set->Add(std::move(monitor).value());
    }
  }
  return set;
}

}  // namespace artemis
