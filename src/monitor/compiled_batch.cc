#include "src/monitor/compiled_batch.h"

#include <algorithm>
#include <utility>

namespace artemis {

BatchCompiledMonitor::BatchCompiledMonitor(std::shared_ptr<const CompiledMachine> machine,
                                           std::uint32_t lanes)
    : machine_(std::move(machine)),
      lanes_(lanes),
      stride_(std::max<std::uint32_t>(
          static_cast<std::uint32_t>(machine_->initial_slots.size()), 1)),
      current_(lanes, machine_->initial),
      slots_(static_cast<std::size_t>(lanes) * stride_, 0.0),
      stack_(std::max<std::uint32_t>(machine_->max_stack, 1), 0.0) {
  summaries_.reserve(machine_->dispatch.size());
  for (const std::uint32_t pc : machine_->dispatch) {
    summaries_.push_back(Summarize(pc));
  }
  any_summaries_.reserve(machine_->any_handler.size());
  for (const std::uint32_t pc : machine_->any_handler) {
    any_summaries_.push_back(Summarize(pc));
  }
  for (std::uint32_t lane = 0; lane < lanes_; ++lane) {
    std::copy(machine_->initial_slots.begin(), machine_->initial_slots.end(), lane_slots(lane));
  }
}

BatchCompiledMonitor::Summary BatchCompiledMonitor::Summarize(std::uint32_t pc) const {
  const Instr* const code = machine_->code.data();
  Summary s;
  s.pc = pc;
  const Instr in = code[pc];
  switch (in.op) {
    case OpCode::kNoMatch:
      s.cls = HandlerClass::kSelfLoop;
      break;
    case OpCode::kCommit:
      // A leading kCommit means guard-free and body-free by construction
      // (body statements would precede it in the program).
      s.cls = HandlerClass::kCommit;
      s.to = static_cast<std::uint16_t>(in.operand);
      break;
    case OpCode::kStoreFieldCommit:
      s.cls = HandlerClass::kStoreFieldCommit;
      s.field = static_cast<EventField>(in.operand >> 16);
      s.slot = static_cast<std::uint16_t>(in.operand & 0xFFFF);
      s.to = static_cast<std::uint16_t>(code[pc + 1].operand);
      break;
    case OpCode::kGuardCommitElapsedLt:
    case OpCode::kGuardCommitElapsedLe:
    case OpCode::kGuardCommitElapsedGt:
    case OpCode::kGuardCommitElapsedGe:
    case OpCode::kGuardCommitElapsedEq:
    case OpCode::kGuardCommitElapsedNe: {
      // Summarizable only when guard failure lands on a bare kNoMatch —
      // i.e. there is no further candidate transition to try. Otherwise
      // the program is a multi-candidate chain and stays kGeneral.
      const std::uint32_t on_fail = code[pc + 2].operand;
      if (code[on_fail].op != OpCode::kNoMatch) {
        break;
      }
      s.cls = HandlerClass::kGuardElapsedCommit;
      s.guard_op = in.op;
      s.field = static_cast<EventField>(in.operand >> 16);
      s.slot = static_cast<std::uint16_t>(in.operand & 0xFFFF);
      s.threshold = machine_->const_pool[code[pc + 1].operand];
      s.to = static_cast<std::uint16_t>(code[pc + 3].operand);
      break;
    }
    default:
      break;  // kGeneral
  }
  return s;
}

void BatchCompiledMonitor::StepBatch(const MonitorEvent* const* events, std::uint32_t n,
                                     std::vector<BatchFailure>* failures) {
  // Hoist every machine-constant load out of the lane loop: the loop body
  // writes current_/slots_ through raw pointers, and without the local
  // copies the compiler must conservatively reload machine_ fields per
  // lane.
  const CompiledMachine& m = *machine_;
  const PathId scope = m.path_scope;
  const std::uint32_t max_task = m.max_task;
  const Summary* const summaries = summaries_.data();
  const Summary* const any_summaries = any_summaries_.data();
  std::uint16_t* const current = current_.data();
  double* const slots = slots_.data();
  const std::uint32_t stride = stride_;
  for (std::uint32_t i = 0; i < n; ++i) {
    const MonitorEvent* const e = events[i];
    if (e == nullptr) {
      continue;  // Exhausted cursor: lane state untouched.
    }
    if (scope != kNoPath && e->path != scope) {
      continue;  // Out-of-scope events are invisible to this machine.
    }
    const std::uint16_t state = current[i];
    const auto t = static_cast<std::uint32_t>(e->task);
    const Summary& s =
        t > max_task
            ? any_summaries[state]
            : summaries[(static_cast<std::uint32_t>(state) * 2u +
                         static_cast<std::uint32_t>(e->kind)) *
                            (max_task + 1u) +
                        t];
    switch (s.cls) {
      case HandlerClass::kSelfLoop:
        break;
      case HandlerClass::kCommit:
        current[i] = s.to;
        break;
      case HandlerClass::kStoreFieldCommit:
        slots[i * stride + s.slot] = VmFieldValue(s.field, *e);
        current[i] = s.to;
        break;
      case HandlerClass::kGuardElapsedCommit: {
        const double a = VmFieldValue(s.field, *e) - slots[i * stride + s.slot];
        bool pass = false;
        switch (s.guard_op) {
          case OpCode::kGuardCommitElapsedLt:
            pass = a < s.threshold;
            break;
          case OpCode::kGuardCommitElapsedLe:
            pass = a <= s.threshold;
            break;
          case OpCode::kGuardCommitElapsedGt:
            pass = a > s.threshold;
            break;
          case OpCode::kGuardCommitElapsedGe:
            pass = a >= s.threshold;
            break;
          case OpCode::kGuardCommitElapsedEq:
            pass = a == s.threshold;
            break;
          case OpCode::kGuardCommitElapsedNe:
            pass = a != s.threshold;
            break;
          default:
            break;
        }
        if (pass) {
          current[i] = s.to;
        }
        break;
      }
      case HandlerClass::kGeneral: {
        VmFailure failure;
        const bool failed = RunCompiledHandler(m, s.pc, *e, &current[i], slots + i * stride,
                                               stack_.data(), &failure);
        if (failed) {
          const FailRecord& fail = m.fail_pool[failure.fail_index];
          failures->push_back(BatchFailure{i, fail.action, fail.target_path,
                                           failure.fail_index});
        }
        break;
      }
    }
  }
}

bool BatchCompiledMonitor::StepLaneGeneral(std::uint32_t lane, const MonitorEvent& event,
                                           BatchVerdict* out) {
  *out = BatchVerdict{};
  if (machine_->path_scope != kNoPath && event.path != machine_->path_scope) {
    return false;
  }
  VmFailure failure;
  const bool failed = RunCompiledHandler(
      *machine_, machine_->HandlerFor(current_[lane], event.kind, event.task), event,
      &current_[lane], lane_slots(lane), stack_.data(), &failure);
  if (failed) {
    const FailRecord& fail = machine_->fail_pool[failure.fail_index];
    out->action = fail.action;
    out->target_path = fail.target_path;
    out->fail_index = failure.fail_index;
    out->failed = true;
  }
  return failed;
}

void BatchCompiledMonitor::HardResetAll() {
  for (std::uint32_t lane = 0; lane < lanes_; ++lane) {
    HardResetLane(lane);
  }
}

void BatchCompiledMonitor::HardResetLane(std::uint32_t lane) {
  current_[lane] = machine_->initial;
  std::copy(machine_->initial_slots.begin(), machine_->initial_slots.end(), lane_slots(lane));
}

void BatchCompiledMonitor::ApplyMigrationFrom(const BatchCompiledMonitor& old,
                                              const std::vector<std::uint16_t>& state_map,
                                              const std::vector<int>& slot_sources) {
  const std::size_t new_slots = machine_->initial_slots.size();
  for (std::uint32_t lane = 0; lane < lanes_ && lane < old.lanes_; ++lane) {
    const std::uint16_t old_state = old.current_[lane];
    current_[lane] = old_state < state_map.size() ? state_map[old_state] : machine_->initial;
    const double* from = old.lane_slots(lane);
    double* to = lane_slots(lane);
    for (std::size_t s = 0; s < new_slots; ++s) {
      const int source = s < slot_sources.size() ? slot_sources[s] : -1;
      to[s] = source >= 0 && static_cast<std::size_t>(source) < old.machine_->initial_slots.size()
                  ? from[source]
                  : machine_->initial_slots[s];
    }
  }
}

void BatchCompiledMonitor::OnPathRestartLane(std::uint32_t lane, PathId path) {
  if (!machine_->reset_on_path_restart) {
    return;
  }
  if (machine_->path_scope != kNoPath && machine_->path_scope != path) {
    return;
  }
  current_[lane] = machine_->initial;
  // As in the scalar backends: counters keep their values, only the
  // control state re-initializes.
}

double BatchCompiledMonitor::LaneVarValue(std::uint32_t lane, const std::string& name) const {
  for (std::size_t i = 0; i < machine_->var_names.size(); ++i) {
    if (machine_->var_names[i] == name) {
      return lane_slots(lane)[i];
    }
  }
  return 0.0;
}

BatchCompiledMonitor::HandlerClass BatchCompiledMonitor::ClassOf(std::uint16_t state,
                                                                 EventKind kind,
                                                                 TaskId task) const {
  return SummaryFor(state, kind, task).cls;
}

std::vector<std::uint64_t> BatchCompiledMonitor::ClassHistogram() const {
  std::vector<std::uint64_t> counts(5, 0);
  for (const Summary& s : summaries_) {
    ++counts[static_cast<std::size_t>(s.cls)];
  }
  return counts;
}

}  // namespace artemis
