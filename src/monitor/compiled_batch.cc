#include "src/monitor/compiled_batch.h"

#include <algorithm>
#include <utility>

#include "src/monitor/batch_kernels.h"

namespace artemis {

BatchCompiledMonitor::BatchCompiledMonitor(std::shared_ptr<const CompiledMachine> machine,
                                           std::uint32_t lanes)
    : machine_(std::move(machine)),
      lanes_(lanes),
      stride_(std::max<std::uint32_t>(
          static_cast<std::uint32_t>(machine_->initial_slots.size()), 1)),
      current_(lanes, machine_->initial),
      slots_(static_cast<std::size_t>(lanes) * stride_, 0.0),
      stack_(std::max<std::uint32_t>(machine_->max_stack, 1), 0.0) {
  summaries_.reserve(machine_->dispatch.size());
  for (const std::uint32_t pc : machine_->dispatch) {
    summaries_.push_back(Summarize(pc));
  }
  any_summaries_.reserve(machine_->any_handler.size());
  for (const std::uint32_t pc : machine_->any_handler) {
    any_summaries_.push_back(Summarize(pc));
  }
  for (std::uint32_t lane = 0; lane < lanes_; ++lane) {
    std::copy(machine_->initial_slots.begin(), machine_->initial_slots.end(), lane_slots(lane));
  }

  // Padded per-entry class table: [state][kind][max_task + 2], the last
  // column of every (state, kind) row repeating the state's any-task
  // handler class. Padding buys a branch-free partition pass — any task id
  // clamps onto a valid column with a single min — and the pass reads only
  // this byte array; the 48-byte Summaries stay cold until a cohort runs.
  {
    const std::uint32_t span = machine_->max_task + 2u;
    const auto n_states = static_cast<std::uint32_t>(any_summaries_.size());
    class_of_.resize(static_cast<std::size_t>(n_states) * 2u * span);
    pc_of_.resize(class_of_.size());
    for (std::uint32_t state = 0; state < n_states; ++state) {
      for (std::uint32_t kind = 0; kind < 2; ++kind) {
        const std::uint32_t row = state * 2u + kind;
        for (std::uint32_t t = 0; t + 1 < span; ++t) {
          const Summary& s = summaries_[row * (span - 1u) + t];
          class_of_[row * span + t] = static_cast<std::uint8_t>(s.cls);
          pc_of_[row * span + t] = s.pc;
        }
        class_of_[row * span + span - 1u] =
            static_cast<std::uint8_t>(any_summaries_[state].cls);
        pc_of_[row * span + span - 1u] = any_summaries_[state].pc;
      }
    }
  }

  // Dead-column table: (kind, task) is dead when every state self-loops on
  // it, i.e. no event on that column can ever change any lane. One extra
  // task slot holds the any-task row's verdict (kind-independent, so it is
  // mirrored into both kind rows to keep ColumnDead a single load).
  const std::uint32_t max_task = machine_->max_task;
  const std::uint32_t cols = max_task + 2u;
  dead_cols_.assign(2u * cols, 1u);
  const auto n_states = static_cast<std::uint32_t>(any_summaries_.size());
  for (std::uint32_t state = 0; state < n_states; ++state) {
    for (std::uint32_t kind = 0; kind < 2; ++kind) {
      const std::uint32_t row = (state * 2u + kind) * (max_task + 1u);
      for (std::uint32_t t = 0; t <= max_task; ++t) {
        if (summaries_[row + t].cls != HandlerClass::kSelfLoop) {
          dead_cols_[kind * cols + t] = 0u;
        }
      }
    }
    if (any_summaries_[state].cls != HandlerClass::kSelfLoop) {
      dead_cols_[cols - 1u] = 0u;
      dead_cols_[2u * cols - 1u] = 0u;
    }
  }
  for (const std::uint8_t d : dead_cols_) {
    dead_column_count_ += d;
  }

  // Per-pass scratch, sized once so StepBatch never allocates.
  const std::uint32_t entries = entry_count();
  counts_.assign(entries, 0u);
  offsets_.assign(entries, 0u);
  perm_.resize(lanes_);
  elapsed_.resize(lanes_);
  bucketed_.reserve(lanes_);
  general_.reserve(lanes_);
  touched_.reserve(std::min<std::uint32_t>(entries, lanes_) + 1u);
}

template <bool kTraffic, bool kList>
void BatchCompiledMonitor::PartitionPass(const MonitorEvent* const* events,
                                         const std::uint32_t* list, std::uint32_t n) {
  const PathId scope = machine_->path_scope;
  const std::uint32_t span = machine_->max_task + 2u;
  const std::uint8_t* const class_of = class_of_.data();
  const std::uint32_t* const pc_of = pc_of_.data();
  const std::uint16_t* const current = current_.data();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t lane = kList ? list[i] : i;
    const MonitorEvent* const e = events[lane];
    if constexpr (!kList) {
      // A lane list arrives pre-filtered (StepBatchLanes contract); the
      // full-range pass checks liveness and scope per lane itself.
      if (e == nullptr) {
        continue;  // Exhausted cursor: lane state untouched.
      }
      if (scope != kNoPath && e->path != scope) {
        continue;  // Out-of-scope events are invisible to this machine.
      }
    }
    const auto t =
        std::min(static_cast<std::uint32_t>(e->task), span - 1u);  // any-task column
    const std::uint32_t entry =
        (static_cast<std::uint32_t>(current[lane]) * 2u +
         static_cast<std::uint32_t>(e->kind)) *
            span +
        t;
    if constexpr (kTraffic) {
      ++traffic_[entry];
    }
    const auto cls = static_cast<HandlerClass>(class_of[entry]);
    if (cls == HandlerClass::kSelfLoop) {
      continue;
    }
    if (cls == HandlerClass::kGeneral) {
      general_.push_back(GeneralLane{lane, pc_of[entry]});
    } else {
      bucketed_.push_back(BucketedLane{lane, entry});
    }
  }
}

BatchCompiledMonitor::Summary BatchCompiledMonitor::Summarize(std::uint32_t pc) const {
  const Instr* const code = machine_->code.data();
  Summary s;
  s.pc = pc;
  const Instr in = code[pc];
  switch (in.op) {
    case OpCode::kNoMatch:
      s.cls = HandlerClass::kSelfLoop;
      break;
    case OpCode::kCommit:
      // A leading kCommit means guard-free and body-free by construction
      // (body statements would precede it in the program).
      s.cls = HandlerClass::kCommit;
      s.to = static_cast<std::uint16_t>(in.operand);
      break;
    case OpCode::kStoreFieldCommit:
      s.cls = HandlerClass::kStoreFieldCommit;
      s.field = static_cast<EventField>(in.operand >> 16);
      s.slot = static_cast<std::uint16_t>(in.operand & 0xFFFF);
      s.to = static_cast<std::uint16_t>(code[pc + 1].operand);
      break;
    case OpCode::kGuardCommitElapsedLt:
    case OpCode::kGuardCommitElapsedLe:
    case OpCode::kGuardCommitElapsedGt:
    case OpCode::kGuardCommitElapsedGe:
    case OpCode::kGuardCommitElapsedEq:
    case OpCode::kGuardCommitElapsedNe: {
      // Summarizable only when guard failure lands on a bare kNoMatch —
      // i.e. there is no further candidate transition to try. Otherwise
      // the program is a multi-candidate chain and stays kGeneral.
      const std::uint32_t on_fail = code[pc + 2].operand;
      if (code[on_fail].op != OpCode::kNoMatch) {
        break;
      }
      s.cls = HandlerClass::kGuardElapsedCommit;
      s.guard_op = in.op;
      s.field = static_cast<EventField>(in.operand >> 16);
      s.slot = static_cast<std::uint16_t>(in.operand & 0xFFFF);
      s.threshold = machine_->const_pool[code[pc + 1].operand];
      s.to = static_cast<std::uint16_t>(code[pc + 3].operand);
      break;
    }
    default:
      break;  // kGeneral
  }
  return s;
}

void BatchCompiledMonitor::StepBatch(const MonitorEvent* const* events, std::uint32_t n,
                                     std::vector<BatchFailure>* failures) {
  bucketed_.clear();
  general_.clear();

  // Pass 1 — partition. Resolve each live lane to its dispatch entry and
  // branch on the 1-byte class code: self-loops (the bulk of real fleet
  // traffic) die here without touching lane state, general lanes queue in
  // lane order for the bytecode fallback, the three vector classes queue
  // for counting sort. Lane state is read-only in this pass. The entry
  // index is branch-free over the padded class table (any task id clamps
  // onto the trailing any-column with one min), and the traffic branch is
  // hoisted into two loop instantiations so the common profiling-off case
  // pays nothing per lane.
  if (traffic_.empty()) {
    PartitionPass<false, false>(events, nullptr, n);
  } else {
    PartitionPass<true, false>(events, nullptr, n);
  }
  FinishStep(events, failures);
}

void BatchCompiledMonitor::StepBatchLanes(const MonitorEvent* const* events,
                                          const std::uint32_t* lane_list, std::uint32_t count,
                                          std::vector<BatchFailure>* failures) {
  bucketed_.clear();
  general_.clear();
  // Same partition as StepBatch minus the per-lane null and scope tests:
  // the feed layer proved both while building the list, which is what
  // makes a path-scoped machine's pass cost proportional to the lanes on
  // ITS path, not the whole tile. The list is ascending, so the cohort
  // sort and the general fallback still see lanes in ascending order and
  // the failure-append contract is unchanged.
  if (traffic_.empty()) {
    PartitionPass<false, true>(events, lane_list, count);
  } else {
    PartitionPass<true, true>(events, lane_list, count);
  }
  FinishStep(events, failures);
}

void BatchCompiledMonitor::FinishStep(const MonitorEvent* const* events,
                                      std::vector<BatchFailure>* failures) {
  const CompiledMachine& m = *machine_;
  // Pass 2 — counting sort into cohorts. counts_ is all-zero on entry
  // (reset entry-by-entry in pass 3, so the cost scales with touched
  // entries, not table size). The sort is stable over the lane-ordered
  // bucketed_ list, so each cohort's lane indices come out ascending —
  // which is what lets pass 3 detect contiguous runs.
  touched_.clear();
  for (const BucketedLane& b : bucketed_) {
    if (counts_[b.entry]++ == 0u) {
      touched_.push_back(b.entry);
    }
  }
  std::uint32_t off = 0;
  for (const std::uint32_t entry : touched_) {
    offsets_[entry] = off;
    off += counts_[entry];
  }
  for (const BucketedLane& b : bucketed_) {
    perm_[offsets_[b.entry]++] = b.lane;
  }

  // Pass 3 — one kernel invocation per cohort; the entry's Summary is
  // decoded once per cohort instead of once per lane. Lanes are mutually
  // independent, so cohort order cannot affect results.
  for (const std::uint32_t entry : touched_) {
    const std::uint32_t len = counts_[entry];
    counts_[entry] = 0u;
    RunCohort(SummaryByEntry(entry), perm_.data() + (offsets_[entry] - len), len, events);
  }

  // Pass 4 — bytecode fallback, in lane order so failures append exactly
  // as the scalar path would emit them. Only kGeneral programs can reach
  // kFail (the fused classes have empty bodies by construction), so
  // failure ordering is unaffected by the cohort reordering above.
  for (const GeneralLane& g : general_) {
    VmFailure failure;
    const bool failed = RunCompiledHandler(m, g.pc, *events[g.lane], &current_[g.lane],
                                           slots_.data() + g.lane * stride_, stack_.data(),
                                           &failure);
    if (failed) {
      const FailRecord& fail = m.fail_pool[failure.fail_index];
      failures->push_back(BatchFailure{g.lane, fail.action, fail.target_path,
                                       failure.fail_index});
    }
  }
}

void BatchCompiledMonitor::RunCohort(const Summary& s, const std::uint32_t* lanes,
                                     std::uint32_t len, const MonitorEvent* const* events) {
  std::uint16_t* const current = current_.data();
  double* const slots = slots_.data();
  const std::uint32_t stride = stride_;
  // Ascending lane order makes density a range check: a cohort is dense
  // when it covers [base, base+len) with no gaps, the common case when a
  // tile's lanes march in lockstep.
  const std::uint32_t base = lanes[0];
  const bool dense = lanes[len - 1] - base + 1u == len;
  using namespace batch_kernels;
  switch (s.cls) {
    case HandlerClass::kCommit:
      if (dense) {
        CommitDense(len, s.to, current + base);
      } else {
        CommitIndexed(lanes, len, s.to, current);
      }
      break;
    case HandlerClass::kStoreFieldCommit:
      if (dense) {
        StoreFieldCommitDense(events, base, len, s.field, s.slot, s.to, slots, stride, current);
      } else {
        StoreFieldCommitIndexed(events, lanes, len, s.field, s.slot, s.to, slots, stride,
                                current);
      }
      break;
    case HandlerClass::kGuardElapsedCommit: {
      if (dense) {
        GatherElapsedDense(events, base, len, s.field, slots, stride, s.slot, elapsed_.data());
      } else {
        GatherElapsedIndexed(events, lanes, len, s.field, slots, stride, s.slot,
                             elapsed_.data());
      }
#define ARTEMIS_BATCH_GUARD_CASE(op, cmp)                                              \
  case OpCode::op:                                                                     \
    if (dense) {                                                                       \
      GuardSelectDense<GuardCmp::cmp>(elapsed_.data(), len, s.threshold, s.to,         \
                                      current + base);                                 \
    } else {                                                                           \
      GuardSelectIndexed<GuardCmp::cmp>(elapsed_.data(), lanes, len, s.threshold,      \
                                        s.to, current);                                \
    }                                                                                  \
    break;
      switch (s.guard_op) {
        ARTEMIS_BATCH_GUARD_CASE(kGuardCommitElapsedLt, kLt)
        ARTEMIS_BATCH_GUARD_CASE(kGuardCommitElapsedLe, kLe)
        ARTEMIS_BATCH_GUARD_CASE(kGuardCommitElapsedGt, kGt)
        ARTEMIS_BATCH_GUARD_CASE(kGuardCommitElapsedGe, kGe)
        ARTEMIS_BATCH_GUARD_CASE(kGuardCommitElapsedEq, kEq)
        ARTEMIS_BATCH_GUARD_CASE(kGuardCommitElapsedNe, kNe)
        default:
          break;  // Unreachable: Summarize only emits the six ops above.
      }
#undef ARTEMIS_BATCH_GUARD_CASE
      break;
    }
    default:
      break;  // kSelfLoop/kGeneral never reach a cohort.
  }
}

bool BatchCompiledMonitor::StepLaneGeneral(std::uint32_t lane, const MonitorEvent& event,
                                           BatchVerdict* out) {
  *out = BatchVerdict{};
  if (machine_->path_scope != kNoPath && event.path != machine_->path_scope) {
    return false;
  }
  VmFailure failure;
  const bool failed = RunCompiledHandler(
      *machine_, machine_->HandlerFor(current_[lane], event.kind, event.task), event,
      &current_[lane], lane_slots(lane), stack_.data(), &failure);
  if (failed) {
    const FailRecord& fail = machine_->fail_pool[failure.fail_index];
    out->action = fail.action;
    out->target_path = fail.target_path;
    out->fail_index = failure.fail_index;
    out->failed = true;
  }
  return failed;
}

void BatchCompiledMonitor::HardResetAll() {
  for (std::uint32_t lane = 0; lane < lanes_; ++lane) {
    HardResetLane(lane);
  }
}

void BatchCompiledMonitor::HardResetLane(std::uint32_t lane) {
  current_[lane] = machine_->initial;
  std::copy(machine_->initial_slots.begin(), machine_->initial_slots.end(), lane_slots(lane));
}

void BatchCompiledMonitor::ApplyMigrationFrom(const BatchCompiledMonitor& old,
                                              const std::vector<std::uint16_t>& state_map,
                                              const std::vector<int>& slot_sources) {
  const std::size_t new_slots = machine_->initial_slots.size();
  for (std::uint32_t lane = 0; lane < lanes_ && lane < old.lanes_; ++lane) {
    const std::uint16_t old_state = old.current_[lane];
    current_[lane] = old_state < state_map.size() ? state_map[old_state] : machine_->initial;
    const double* from = old.lane_slots(lane);
    double* to = lane_slots(lane);
    for (std::size_t s = 0; s < new_slots; ++s) {
      const int source = s < slot_sources.size() ? slot_sources[s] : -1;
      to[s] = source >= 0 && static_cast<std::size_t>(source) < old.machine_->initial_slots.size()
                  ? from[source]
                  : machine_->initial_slots[s];
    }
  }
}

void BatchCompiledMonitor::OnPathRestartLane(std::uint32_t lane, PathId path) {
  if (!machine_->reset_on_path_restart) {
    return;
  }
  if (machine_->path_scope != kNoPath && machine_->path_scope != path) {
    return;
  }
  current_[lane] = machine_->initial;
  // As in the scalar backends: counters keep their values, only the
  // control state re-initializes.
}

void BatchCompiledMonitor::EnableTraffic() {
  traffic_.assign(entry_count(), 0u);
}

std::vector<std::uint64_t> BatchCompiledMonitor::ClassTraffic() const {
  std::vector<std::uint64_t> counts(kNumClasses, 0);
  for (std::size_t i = 0; i < traffic_.size(); ++i) {
    counts[class_of_[i]] += traffic_[i];
  }
  return counts;
}

BatchCompiledMonitor::EntryInfo BatchCompiledMonitor::DecodeEntry(std::uint32_t entry) const {
  const std::uint32_t span = machine_->max_task + 2u;
  const std::uint32_t row = entry / span;
  const std::uint32_t col = entry % span;
  EntryInfo info;
  info.task = col == span - 1u ? -1 : static_cast<int>(col);  // -1: any-task column
  info.kind = static_cast<int>(row & 1u);
  info.state = static_cast<std::uint16_t>(row >> 1u);
  return info;
}

double BatchCompiledMonitor::LaneVarValue(std::uint32_t lane, const std::string& name) const {
  for (std::size_t i = 0; i < machine_->var_names.size(); ++i) {
    if (machine_->var_names[i] == name) {
      return lane_slots(lane)[i];
    }
  }
  return 0.0;
}

BatchCompiledMonitor::HandlerClass BatchCompiledMonitor::ClassOf(std::uint16_t state,
                                                                 EventKind kind,
                                                                 TaskId task) const {
  return SummaryFor(state, kind, task).cls;
}

std::vector<std::uint64_t> BatchCompiledMonitor::ClassHistogram() const {
  std::vector<std::uint64_t> counts(kNumClasses, 0);
  for (const Summary& s : summaries_) {
    ++counts[static_cast<std::size_t>(s.cls)];
  }
  return counts;
}

}  // namespace artemis
