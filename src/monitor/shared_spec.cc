#include "src/monitor/shared_spec.h"

#include <utility>

#include "src/monitor/builtin.h"
#include "src/monitor/compiled.h"
#include "src/monitor/interp.h"
#include "src/spec/parser.h"
#include "src/spec/validator.h"

namespace artemis {

SpecArtifactStage StageForBackend(MonitorBackend backend) {
  switch (backend) {
    case MonitorBackend::kBuiltin:
      return SpecArtifactStage::kAst;
    case MonitorBackend::kInterpreted:
      return SpecArtifactStage::kLowered;
    case MonitorBackend::kCompiled:
      return SpecArtifactStage::kCompiled;
  }
  return SpecArtifactStage::kAst;
}

const char* SpecArtifactStageName(SpecArtifactStage stage) {
  switch (stage) {
    case SpecArtifactStage::kAst:
      return "ast";
    case SpecArtifactStage::kLowered:
      return "lowered";
    case SpecArtifactStage::kCompiled:
      return "compiled";
  }
  return "?";
}

namespace {

StatusOr<SharedSpecArtifactPtr> Finish(std::string spec_text, SpecAst ast,
                                       const AppGraph& graph, SpecArtifactStage stage,
                                       const LoweringOptions& lowering) {
  auto artifact = std::make_shared<SharedSpecArtifact>();
  artifact->spec_text = std::move(spec_text);
  artifact->ast = std::move(ast);
  artifact->stage = stage;
  ValidationResult validation = SpecValidator::Validate(artifact->ast, graph);
  if (!validation.ok()) {
    return validation.status;
  }
  artifact->validation_warnings = std::move(validation.warnings);
  if (stage != SpecArtifactStage::kAst) {
    StatusOr<std::vector<StateMachine>> machines = LowerSpec(artifact->ast, graph, lowering);
    if (!machines.ok()) {
      return machines.status();
    }
    artifact->machines = std::move(machines).value();
    if (stage == SpecArtifactStage::kCompiled) {
      artifact->compiled.reserve(artifact->machines.size());
      for (const StateMachine& machine : artifact->machines) {
        StatusOr<CompiledMachine> compiled = CompileStateMachine(machine);
        if (!compiled.ok()) {
          return compiled.status();
        }
        artifact->compiled.push_back(std::move(compiled).value());
      }
    }
  }
  return SharedSpecArtifactPtr(std::move(artifact));
}

}  // namespace

StatusOr<SharedSpecArtifactPtr> BuildSpecArtifact(std::string spec_text, const AppGraph& graph,
                                                  SpecArtifactStage stage,
                                                  const LoweringOptions& lowering) {
  StatusOr<SpecAst> parsed = SpecParser::Parse(spec_text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return Finish(std::move(spec_text), std::move(parsed).value(), graph, stage, lowering);
}

StatusOr<SharedSpecArtifactPtr> BuildSpecArtifactFromAst(const SpecAst& spec,
                                                         const AppGraph& graph,
                                                         SpecArtifactStage stage,
                                                         const LoweringOptions& lowering) {
  return Finish("", spec, graph, stage, lowering);
}

StatusOr<std::unique_ptr<MonitorSet>> BuildMonitorSetFromArtifact(
    const SharedSpecArtifactPtr& artifact, const AppGraph& graph, MonitorBackend backend,
    const LoweringOptions& lowering, const MonitorSetOptions& options) {
  if (artifact == nullptr) {
    return Status::Invalid("null spec artifact");
  }
  const SpecArtifactStage needed = StageForBackend(backend);
  if (static_cast<int>(artifact->stage) < static_cast<int>(needed)) {
    return Status::FailedPrecondition(
        std::string("spec artifact stage '") + SpecArtifactStageName(artifact->stage) +
        "' cannot serve backend '" + MonitorBackendName(backend) + "'");
  }
  auto set = std::make_unique<MonitorSet>(options);
  if (backend == MonitorBackend::kBuiltin) {
    for (const TaskBlockAst& block : artifact->ast.blocks) {
      for (const PropertyAst& property : block.properties) {
        StatusOr<std::unique_ptr<Monitor>> monitor =
            MakeBuiltinMonitor(property, block.task, graph, lowering.collect_reset_on_fail);
        if (!monitor.ok()) {
          return monitor.status();
        }
        set->Add(std::move(monitor).value());
      }
    }
    return set;
  }
  // Aliasing shared_ptrs: each monitor shares ownership of the whole
  // artifact but points at one machine slot, so the immutable programs are
  // never copied per run.
  for (std::size_t i = 0; i < artifact->machines.size(); ++i) {
    if (backend == MonitorBackend::kCompiled) {
      set->Add(std::make_unique<CompiledMonitor>(
          std::shared_ptr<const CompiledMachine>(artifact, &artifact->compiled[i])));
    } else {
      set->Add(std::make_unique<InterpretedMonitor>(
          std::shared_ptr<const StateMachine>(artifact, &artifact->machines[i])));
    }
  }
  return set;
}

}  // namespace artemis
