#include "src/fleet/instance.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/core/builder.h"
#include "src/sim/cost_model.h"
#include "src/sweep/sweep.h"

namespace artemis::fleet {
namespace {

// MonitorSet's per-event charging for the separate-component placement is
// monitor_call_cycles (the interface crossing) followed by one
// StepCycles charge per monitor; the compiled backend's StepCycles is
// flat. Capture mode mirrors that exactly.
std::vector<double> CompiledStepCycles(const SharedSpecArtifact& artifact,
                                       const CostModel& costs) {
  return std::vector<double>(artifact.compiled.size(),
                             static_cast<double>(costs.compiled_step_cycles));
}

// Mirror of MonitorSet::FramBytes over compiled machines: set bookkeeping
// plus, per monitor, the state word + variable slots + property_t slot.
std::size_t MirroredFramBytes(const SharedSpecArtifact& artifact) {
  std::size_t bytes = sizeof(std::uint64_t) + sizeof(MonitorVerdict) + 16;
  for (const CompiledMachine& machine : artifact.compiled) {
    bytes += sizeof(std::uint16_t) + machine.initial_slots.size() * sizeof(double);
    bytes += 24;
  }
  return bytes;
}

std::uint64_t EnergyNj(EnergyUj uj) {
  return uj <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(uj * 1000.0));
}

}  // namespace

std::uint64_t DeviceSeed(std::uint64_t fleet_seed, std::uint64_t device_index) {
  // One SplitMix64 scramble of the combined coordinates; the +1 offsets
  // keep (0, 0) away from the all-zero fixed point.
  std::uint64_t z = (fleet_seed + 1) * 0x9E3779B97F4A7C15ull + (device_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

// ---- CaptureChecker ------------------------------------------------------

CaptureChecker::CaptureChecker(std::vector<double> step_cycles, std::size_t fram_bytes)
    : step_cycles_(std::move(step_cycles)), fram_bytes_(fram_bytes) {}

void CaptureChecker::HardReset(Mcu& mcu) {
  if (!arena_registered_) {
    mcu.nvm().Allocate(MemOwner::kMonitor, fram_bytes_, "monitor-set");
    arena_registered_ = true;
  }
  in_progress_ = false;
  cursor_seq_ = 0;
  cursor_ = 0;
  has_done_ = false;
  done_seq_ = 0;
}

void CaptureChecker::Finalize(Mcu& mcu) {
  if (in_progress_) {
    mcu.ExecuteCycles(mcu.costs().timestamp_read_cycles, CostTag::kMonitor);
  }
}

CheckOutcome CaptureChecker::OnEvent(const MonitorEvent& event, Mcu& mcu) {
  CheckOutcome outcome;
  const ExecStatus call =
      mcu.ExecuteCycles(mcu.costs().monitor_call_cycles, CostTag::kMonitor);
  if (call != ExecStatus::kOk) {
    outcome.status = static_cast<int>(call);
    return outcome;
  }
  // Exactly-once capture: a boundary retry after the event was fully
  // consumed replays from the (empty) verdict cache.
  if (has_done_ && event.seq == done_seq_) {
    return outcome;
  }
  if (!in_progress_ || cursor_seq_ != event.seq) {
    in_progress_ = true;
    cursor_seq_ = event.seq;
    cursor_ = 0;
  }
  for (std::size_t i = cursor_; i < step_cycles_.size(); ++i) {
    const ExecStatus step = mcu.ExecuteCycles(step_cycles_[i], CostTag::kMonitor);
    if (step != ExecStatus::kOk) {
      // Power failed before this monitor durably consumed the event; the
      // cursor still points at it, so the re-delivered event resumes here.
      outcome.status = static_cast<int>(step);
      return outcome;
    }
    cursor_ = i + 1;
  }
  CapturedRecord record;
  record.kind = CapturedRecord::Kind::kEvent;
  record.event = event;
  records_.push_back(std::move(record));
  ++events_captured_;
  in_progress_ = false;
  done_seq_ = event.seq;
  has_done_ = true;
  return outcome;
}

void CaptureChecker::OnPathRestart(PathId path, Mcu& mcu) {
  mcu.ExecuteCycles(mcu.costs().action_apply_cycles, CostTag::kMonitor);
  CapturedRecord record;
  record.kind = CapturedRecord::Kind::kPathRestart;
  record.restart_path = path;
  records_.push_back(record);
}

// ---- DeviceInstance ------------------------------------------------------

DeviceInstance::DeviceInstance(const FleetContext& ctx, const DeviceConfig& config)
    : ctx_(ctx), config_(config) {}

DeviceResult DeviceInstance::Finish(const KernelRunResult& run,
                                    const IntermittentKernel& kernel,
                                    std::uint64_t monitor_events, std::uint64_t violations,
                                    const ObsStatsAggregator* agg) const {
  DeviceResult r;
  r.ok = true;
  r.completed = run.completed;
  r.starved = run.starved;
  r.timed_out = run.timed_out;
  r.finished_at_us = run.finished_at;
  r.iterations = run.iterations_completed;
  r.reboots = run.stats.reboots;
  r.charging_us = run.stats.charging_time;
  r.energy_nj = EnergyNj(run.stats.TotalEnergy());
  r.monitor_energy_nj = EnergyNj(run.stats.energy[static_cast<int>(CostTag::kMonitor)]);
  r.monitor_events = monitor_events;
  r.violations = violations;
  for (const TaskProfile& profile : kernel.profiles()) {
    r.commits += profile.commits;
    r.aborts += profile.aborts;
    r.skips += profile.skips;
    if (profile.commits > 0) {
      const std::uint64_t attempts =
          (profile.commits + profile.aborts + profile.commits - 1) / profile.commits;
      r.max_attempts_per_commit = std::max(r.max_attempts_per_commit, attempts);
    }
  }
  if (agg != nullptr) {
    r.has_obs = true;
    for (int k = 0; k < obs::kNumKinds; ++k) {
      r.obs_counts[static_cast<std::size_t>(k)] = agg->CountFor(static_cast<obs::Kind>(k));
    }
    r.obs_total = agg->total_events();
    r.obs_completed_paths = agg->completed_paths();
    r.obs_committed_bytes = agg->committed_bytes();
  }
  return r;
}

DeviceResult DeviceInstance::RunScalar() {
  AppGraph graph = sweep::BuildAppGraphByName(ctx_.app);
  PlatformBuilder builder;
  if (config_.charge == 0) {
    builder.WithContinuousPower();
  } else {
    builder.WithFixedCharge(config_.budget, config_.charge);
  }
  std::unique_ptr<Mcu> mcu = builder.Build();

  obs::EventBus bus;
  ObsStatsAggregator aggregator;
  obs::EventBus* observer = nullptr;
  if (config_.collect_obs) {
    bus.AddSink(&aggregator);
    observer = &bus;
  }

  ArtemisConfig config;
  config.backend = config_.backend;
  config.kernel.seed = config_.seed;
  config.kernel.max_wall_time = config_.horizon;
  config.kernel.app_iterations = config_.iterations == 0 ? UINT64_MAX : config_.iterations;
  config.kernel.max_steps = config_.max_steps;
  config.kernel.record_trace = false;  // host memory; a fleet never wants it
  config.observer = observer;
  StatusOr<std::unique_ptr<ArtemisRuntime>> runtime =
      ArtemisRuntime::CreateFromArtifact(&graph, ctx_.artifact, mcu.get(), config);
  if (!runtime.ok()) {
    DeviceResult r;
    r.error = runtime.status().ToString();
    return r;
  }
  const KernelRunResult run = runtime.value()->Run();
  return Finish(run, runtime.value()->kernel(),
                runtime.value()->monitors().events_processed(),
                runtime.value()->monitors().violations_reported(),
                config_.collect_obs ? &aggregator : nullptr);
}

DeviceResult DeviceInstance::RunCapture(std::vector<CapturedRecord>* records) {
  AppGraph graph = sweep::BuildAppGraphByName(ctx_.app);
  PlatformBuilder builder;
  if (config_.charge == 0) {
    builder.WithContinuousPower();
  } else {
    builder.WithFixedCharge(config_.budget, config_.charge);
  }
  std::unique_ptr<Mcu> mcu = builder.Build();

  obs::EventBus bus;
  ObsStatsAggregator aggregator;
  obs::EventBus* observer = nullptr;
  if (config_.collect_obs) {
    bus.AddSink(&aggregator);
    observer = &bus;
    mcu->set_observer(observer);
  }

  CaptureChecker checker(CompiledStepCycles(*ctx_.artifact, mcu->costs()),
                         MirroredFramBytes(*ctx_.artifact));
  KernelOptions options;
  options.seed = config_.seed;
  options.max_wall_time = config_.horizon;
  options.app_iterations = config_.iterations == 0 ? UINT64_MAX : config_.iterations;
  options.max_steps = config_.max_steps;
  options.record_trace = false;
  options.observer = observer;
  IntermittentKernel kernel(&graph, &checker, mcu.get(), options);
  const KernelRunResult run = kernel.Run();
  *records = checker.TakeRecords();
  // monitor_events/violations stay 0 here: the batch pass owns them.
  return Finish(run, kernel, 0, 0, config_.collect_obs ? &aggregator : nullptr);
}

}  // namespace artemis::fleet
