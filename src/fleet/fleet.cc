#include "src/fleet/fleet.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <memory>
#include <utility>

#include "src/apps/ar_app.h"
#include "src/apps/greenhouse_app.h"
#include "src/apps/health_app.h"
#include "src/base/thread_pool.h"
#include "src/monitor/arbitration.h"
#include "src/monitor/compiled_batch.h"
#include "src/sweep/sweep.h"

namespace artemis::fleet {
namespace {

StatusOr<std::string> DefaultSpecForApp(const std::string& app) {
  if (app == "health") {
    return HealthAppSpec();
  }
  if (app == "greenhouse") {
    return GreenhouseSpec();
  }
  if (app == "ar") {
    return ArAppSpec();
  }
  return Status::Invalid("fleet: unknown app '" + app + "' (health|greenhouse|ar)");
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string U64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

// Fixed-precision ratio of two integers: deterministic for any shard
// count because both operands are shard-order-independent integers.
std::string Ratio(std::uint64_t num, std::uint64_t den) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", den == 0 ? 0.0 : static_cast<double>(num) / den);
  return buf;
}

// One shard's batch-mode monitor engine: lanes over every compiled
// machine of the artifact, stepped tile by tile.
class TileStepper {
 public:
  TileStepper(const SharedSpecArtifactPtr& artifact, std::uint32_t lanes,
              ArbitrationPolicy policy)
      : policy_(policy), lanes_(lanes) {
    machines_.reserve(artifact->compiled.size());
    for (const CompiledMachine& machine : artifact->compiled) {
      // Aliasing share: the batch monitors borrow the artifact's immutable
      // machine storage, exactly like scalar CompiledMonitor instances do.
      machines_.emplace_back(
          std::shared_ptr<const CompiledMachine>(artifact, &machine), lanes);
    }
    failures_.resize(machines_.size());
    high_water_.resize(machines_.size(), 0);
    pending_.resize(lanes);
    cursors_.resize(lanes);
    events_.resize(lanes);

    // Fleet-level dead-column tables, sized by the widest machine's task
    // range (ColumnDead clamps narrower machines' task ids onto their
    // any-task row, matching their dispatch). An event is a provable no-op
    // for a machine when its column self-loops in every state — or when
    // the machine is path-scoped to a different path, in which case
    // StepBatch would drop the event before dispatch anyway. So the check
    // is per event path: the base table ANDs the unscoped machines, and
    // each scoped path gets a refinement table that additionally ANDs the
    // machines watching that path. RunTile consumes all-dead events at
    // feed time, so they never cost a batch-VM pass.
    max_task_ = 0;
    for (const BatchCompiledMonitor& m : machines_) {
      max_task_ = std::max(max_task_, m.machine().max_task);
    }
    const std::uint32_t cols = max_task_ + 2u;
    base_dead_.assign(2u * cols, machines_.empty() ? 0u : 1u);
    for (const BatchCompiledMonitor& m : machines_) {
      if (m.machine().path_scope != kNoPath) {
        continue;
      }
      AndColumnsInto(m, &base_dead_);
    }
    for (const BatchCompiledMonitor& m : machines_) {
      const PathId scope = m.machine().path_scope;
      if (scope == kNoPath) {
        continue;
      }
      const auto p = static_cast<std::size_t>(scope);
      if (scope_dead_.size() <= p) {
        scope_dead_.resize(p + 1);
      }
      if (scope_dead_[p].empty()) {
        scope_dead_[p] = base_dead_;
      }
      AndColumnsInto(m, &scope_dead_[p]);
    }
    live_lanes_.reserve(lanes);
    for (const BatchCompiledMonitor& m : machines_) {
      const PathId scope = m.machine().path_scope;
      if (scope == kNoPath) {
        continue;
      }
      const auto p = static_cast<std::size_t>(scope);
      if (path_lanes_.size() <= p) {
        path_lanes_.resize(p + 1);
        path_watched_.resize(p + 1, 0u);
      }
      path_watched_[p] = 1u;
      path_lanes_[p].reserve(lanes);
    }
    // Per-machine live-column bitmask (fleet layout, bit = kind*cols + t):
    // the dynamic complement of the dead tables above. The feed loop ORs
    // the columns actually present among a pass's live lanes into a pass
    // mask; a machine whose live columns miss that mask entirely is proven
    // all-self-loop for the WHOLE pass and skips its partition outright —
    // dead-column elision at machine-pass granularity, catching event
    // mixes that are only dead for SOME machines and so survive EventDead.
    // Masks need 2*cols bits; monitors with task ranges beyond 64 bits of
    // columns simply forgo the skip (column_mask_ok_ false).
    column_mask_ok_ = 2u * cols <= 64u;
    if (column_mask_ok_) {
      live_col_mask_.assign(machines_.size(), 0u);
      for (std::size_t m = 0; m < machines_.size(); ++m) {
        for (std::uint32_t kind = 0; kind < 2; ++kind) {
          for (std::uint32_t t = 0; t < cols; ++t) {
            if (!machines_[m].ColumnDead(static_cast<EventKind>(kind),
                                         static_cast<TaskId>(t))) {
              live_col_mask_[m] |= std::uint64_t{1} << (kind * cols + t);
            }
          }
        }
      }
    }
    path_masks_.resize(path_watched_.size(), 0u);
    // Reported static elision facts use the strict scope-blind AND over
    // every machine — the columns no event can ever touch, whatever its
    // path. (The runtime elision rate is usually higher, because scoped
    // machines only constrain events on their own path.)
    for (std::uint32_t kind = 0; kind < 2; ++kind) {
      for (std::uint32_t t = 0; t < cols; ++t) {
        bool dead = !machines_.empty();
        for (const BatchCompiledMonitor& m : machines_) {
          if (!m.ColumnDead(static_cast<EventKind>(kind), static_cast<TaskId>(t))) {
            dead = false;
            break;
          }
        }
        dead_columns_ += dead ? 1u : 0u;
      }
    }
  }

  // Is (kind, task, path) a provable no-op for every machine of the set?
  bool EventDead(const MonitorEvent& e) const {
    const std::uint32_t cols = max_task_ + 2u;
    const auto t = std::min(static_cast<std::uint32_t>(e.task), cols - 1u);
    const auto p = static_cast<std::size_t>(e.path);
    const std::vector<std::uint8_t>& table =
        e.path != kNoPath && p < scope_dead_.size() && !scope_dead_[p].empty()
            ? scope_dead_[p]
            : base_dead_;
    return table[static_cast<std::uint32_t>(e.kind) * cols + t] != 0;
  }
  std::uint32_t dead_columns() const { return dead_columns_; }
  std::uint32_t total_columns() const { return 2u * (max_task_ + 2u); }

  void EnableTraffic() {
    traffic_on_ = true;  // disables the machine-pass skip: the measured
                         // dispatch mix must include self-loop dispatches
    for (BatchCompiledMonitor& m : machines_) {
      m.EnableTraffic();
    }
  }

  // Folds this stepper's accumulated traffic counters into `agg` as plain
  // uint64 sums (shard-order independent by commutativity).
  void FoldTraffic(FleetAggregates* agg) const {
    agg->has_traffic = true;
    if (agg->entry_traffic.size() < machines_.size()) {
      agg->entry_traffic.resize(machines_.size());
    }
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      const std::vector<std::uint64_t>& counters = machines_[m].EntryTraffic();
      std::vector<std::uint64_t>& dst = agg->entry_traffic[m];
      if (dst.size() < counters.size()) {
        dst.resize(counters.size(), 0);
      }
      for (std::size_t i = 0; i < counters.size(); ++i) {
        dst[i] += counters[i];
      }
      const std::vector<std::uint64_t> by_class = machines_[m].ClassTraffic();
      for (std::size_t c = 0; c < by_class.size() && c < agg->class_traffic.size(); ++c) {
        agg->class_traffic[c] += by_class[c];
      }
    }
  }

  std::size_t machine_count() const { return machines_.size(); }
  const BatchCompiledMonitor& machine(std::size_t i) const { return machines_[i]; }

  std::vector<std::uint64_t> ClassHistogram() const {
    std::vector<std::uint64_t> counts(5, 0);
    for (const BatchCompiledMonitor& m : machines_) {
      const std::vector<std::uint64_t> h = m.ClassHistogram();
      for (std::size_t i = 0; i < h.size(); ++i) {
        counts[i] += h[i];
      }
    }
    return counts;
  }

  // Advances every device of the tile through its captured stream and
  // fills the per-device monitor_events / violations counters. `streams`
  // and `results` are parallel, sized n <= lanes.
  void RunTile(std::vector<std::vector<CapturedRecord>>& streams,
               std::vector<DeviceResult*>& results) {
    const std::uint32_t n = static_cast<std::uint32_t>(streams.size());
    for (std::uint32_t lane = 0; lane < n; ++lane) {
      cursors_[lane] = 0;
      for (BatchCompiledMonitor& m : machines_) {
        m.HardResetLane(lane);
      }
    }
    for (;;) {
      // Feed each lane's cursor: replay path-restart markers in place,
      // consume dead-column events inline (they count as monitor events but
      // provably cannot change any machine's lane state or verdicts), then
      // expose the next live event (or mark the lane exhausted). The same
      // walk builds this pass's lane lists — live lanes, plus per watched
      // path the lanes whose event is on it — so the per-lane liveness and
      // path decode happens ONCE here instead of once per machine inside
      // every partition pass.
      live_lanes_.clear();
      for (auto& list : path_lanes_) {
        list.clear();
      }
      const std::uint32_t cols = max_task_ + 2u;
      std::uint64_t pass_mask = 0;
      std::fill(path_masks_.begin(), path_masks_.end(), std::uint64_t{0});
      for (std::uint32_t lane = 0; lane < n; ++lane) {
        std::vector<CapturedRecord>& stream = streams[lane];
        std::size_t& cur = cursors_[lane];
        while (cur < stream.size()) {
          const CapturedRecord& rec = stream[cur];
          if (rec.kind == CapturedRecord::Kind::kPathRestart) {
            for (BatchCompiledMonitor& m : machines_) {
              m.OnPathRestartLane(lane, rec.restart_path);
            }
            ++cur;
            continue;
          }
          if (EventDead(rec.event)) {
            ++results[lane]->monitor_events;
            ++results[lane]->monitor_events_elided;
            ++cur;
            continue;
          }
          break;
        }
        if (cur < stream.size()) {
          const MonitorEvent& event = stream[cur].event;
          events_[lane] = &event;
          live_lanes_.push_back(lane);
          const std::uint64_t col_bit =
              std::uint64_t{1}
              << (static_cast<std::uint32_t>(event.kind) * cols +
                  std::min(static_cast<std::uint32_t>(event.task), cols - 1u));
          pass_mask |= col_bit;
          const auto p = static_cast<std::size_t>(event.path);
          if (p < path_watched_.size() && path_watched_[p] != 0u) {
            path_lanes_[p].push_back(lane);
            path_masks_[p] |= col_bit;
          }
        } else {
          events_[lane] = nullptr;
        }
      }
      if (live_lanes_.empty()) {
        return;
      }
      // One SoA pass per machine over its lane list; failures come back
      // as compact lists, so the common all-clear round writes nothing.
      // Reserving to the run's high-water mark keeps the (rare) appends
      // from reallocating mid-pass once a burst has been seen once.
      for (std::size_t m = 0; m < machines_.size(); ++m) {
        failures_[m].clear();
        const PathId scope = machines_[m].machine().path_scope;
        const std::vector<std::uint32_t>& list =
            scope == kNoPath ? live_lanes_ : path_lanes_[static_cast<std::size_t>(scope)];
        if (list.empty()) {
          continue;  // Nothing on this machine's path this pass.
        }
        // Machine-pass elision: if none of the columns present in this
        // machine's lane list is live for it, every listed lane would
        // partition to kSelfLoop — provably no state change, no failure.
        // Skipped under --stats so the traffic profile stays the true
        // dispatch mix.
        if (column_mask_ok_ && !traffic_on_) {
          const std::uint64_t mask =
              scope == kNoPath ? pass_mask : path_masks_[static_cast<std::size_t>(scope)];
          if ((mask & live_col_mask_[m]) == 0u) {
            continue;
          }
        }
        if (failures_[m].capacity() < high_water_[m]) {
          failures_[m].reserve(high_water_[m]);
        }
        machines_[m].StepBatchLanes(events_.data(), list.data(),
                                    static_cast<std::uint32_t>(list.size()), &failures_[m]);
        high_water_[m] = std::max(high_water_[m], failures_[m].size());
      }
      // Group the (rare) failures per lane — machine-outer iteration keeps
      // each lane's pending list in machine order, mirroring MonitorSet's
      // per-event pending/Arbitrate cycle.
      touched_.clear();
      for (std::size_t m = 0; m < machines_.size(); ++m) {
        for (const BatchFailure& f : failures_[m]) {
          if (pending_[f.lane].empty()) {
            touched_.push_back(f.lane);
          }
          MonitorVerdict verdict;
          verdict.action = f.action;
          verdict.target_path = f.target_path;
          verdict.property = machines_[m].fail_record(f.fail_index).property;
          pending_[f.lane].push_back(std::move(verdict));
        }
      }
      for (std::uint32_t lane = 0; lane < n; ++lane) {
        if (events_[lane] == nullptr) {
          continue;
        }
        ++results[lane]->monitor_events;
        ++cursors_[lane];
      }
      for (const std::uint32_t lane : touched_) {
        const MonitorVerdict verdict = Arbitrate(pending_[lane], policy_);
        if (verdict.violated()) {
          ++results[lane]->violations;
        }
        pending_[lane].clear();
      }
    }
  }

 private:
  // ANDs machine m's dead-column verdicts into `table` (fleet layout).
  void AndColumnsInto(const BatchCompiledMonitor& m, std::vector<std::uint8_t>* table) const {
    const std::uint32_t cols = max_task_ + 2u;
    for (std::uint32_t kind = 0; kind < 2; ++kind) {
      for (std::uint32_t t = 0; t < cols; ++t) {
        if (!m.ColumnDead(static_cast<EventKind>(kind), static_cast<TaskId>(t))) {
          (*table)[kind * cols + t] = 0u;
        }
      }
    }
  }

  ArbitrationPolicy policy_;
  std::uint32_t lanes_ = 0;
  std::uint32_t max_task_ = 0;           // widest machine's task range
  std::uint32_t dead_columns_ = 0;       // strict scope-blind AND, for reporting
  std::vector<std::uint8_t> base_dead_;  // [kind][task], AND over unscoped machines
  // [path] -> base ANDed with the machines scoped to that path; empty
  // vector = no machine watches the path, fall back to base.
  std::vector<std::vector<std::uint8_t>> scope_dead_;
  std::vector<BatchCompiledMonitor> machines_;
  std::vector<std::vector<BatchFailure>> failures_;   // [machine], reused
  std::vector<std::size_t> high_water_;               // [machine] max failures seen
  std::vector<std::vector<MonitorVerdict>> pending_;  // [lane], cleared after use
  std::vector<std::uint32_t> touched_;                // lanes with pending verdicts
  std::vector<std::size_t> cursors_;                  // [lane]
  std::vector<const MonitorEvent*> events_;           // [lane]
  // Per-pass lane lists (ascending by construction of the feed loop):
  // every live lane, and — for each path some machine is scoped to — the
  // live lanes whose current event is on that path. Unscoped machines
  // step the live list (skipping exhausted lanes without a per-machine
  // null test); a scoped machine steps only its path's list, so its pass
  // cost tracks the traffic it can actually see instead of the tile width.
  std::vector<std::uint32_t> live_lanes_;
  std::vector<std::vector<std::uint32_t>> path_lanes_;  // [path], filled if watched
  std::vector<std::uint8_t> path_watched_;              // [path], 1 = some machine's scope
  // Machine-pass elision state: per-machine live-column bitmask plus the
  // per-pass masks of columns actually present (fleet layout bits).
  bool column_mask_ok_ = false;
  bool traffic_on_ = false;
  std::vector<std::uint64_t> live_col_mask_;  // [machine]
  std::vector<std::uint64_t> path_masks_;     // [path], per-pass scratch
};

}  // namespace

std::vector<ShardRange> BuildCpuMap(std::uint64_t devices, int shards) {
  const std::uint64_t j =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::max(shards, 1)));
  std::vector<ShardRange> map;
  map.reserve(j);
  const std::uint64_t base = devices / j;
  const std::uint64_t spare = devices % j;
  std::uint64_t begin = 0;
  for (std::uint64_t s = 0; s < j; ++s) {
    const std::uint64_t size = base + (s < spare ? 1 : 0);
    map.push_back(ShardRange{begin, begin + size});
    begin += size;
  }
  return map;
}

void FleetHistogram::Record(std::uint64_t sample) {
  int bucket = 0;
  for (std::uint64_t v = sample; v > 0; v >>= 1) {
    ++bucket;
  }
  // bucket b holds samples in [2^(b-1), 2^b), bucket 0 holds zeros.
  ++buckets_[std::min(bucket, kBuckets - 1)];
  if (count_ == 0 || sample < min_) {
    min_ = sample;
  }
  max_ = std::max(max_, sample);
  sum_ += sample;
  ++count_;
}

void FleetHistogram::MergeFrom(const FleetHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

std::uint64_t FleetHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  const double clamped = std::min(std::max(p, 0.0), 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(clamped * static_cast<double>(count_));
  if (rank == 0) {
    rank = 1;
  }
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      if (i == 0) {
        return 0;
      }
      // Upper bound of the bucket, clamped into the observed range.
      const std::uint64_t bound =
          i >= 64 ? std::numeric_limits<std::uint64_t>::max() : (1ull << i) - 1;
      return std::min(bound, max_);
    }
  }
  return max_;
}

std::string FleetHistogram::Summary() const {
  return "n=" + U64(count_) + " min=" + U64(min()) + " p50=" + U64(Percentile(0.50)) +
         " p90=" + U64(Percentile(0.90)) + " p99=" + U64(Percentile(0.99)) +
         " max=" + U64(max_);
}

void FleetAggregates::Fold(const DeviceResult& result) {
  ++devices;
  if (!result.ok) {
    ++errors;
    if (first_error.empty()) {
      first_error = result.error;
    }
    return;
  }
  completed += result.completed ? 1 : 0;
  starved += result.starved ? 1 : 0;
  timed_out += result.timed_out ? 1 : 0;
  iterations += result.iterations;
  reboots += result.reboots;
  charging_us += result.charging_us;
  energy_nj += result.energy_nj;
  monitor_energy_nj += result.monitor_energy_nj;
  monitor_events += result.monitor_events;
  monitor_events_elided += result.monitor_events_elided;
  violations += result.violations;
  devices_with_violations += result.violations > 0 ? 1 : 0;
  commits += result.commits;
  aborts += result.aborts;
  skips += result.skips;
  energy_uj_hist.Record(result.energy_nj / 1000);
  violations_hist.Record(result.violations);
  attempts_hist.Record(result.max_attempts_per_commit);
  if (result.has_obs) {
    has_obs = true;
    for (int k = 0; k < obs::kNumKinds; ++k) {
      obs_counts[static_cast<std::size_t>(k)] += result.obs_counts[static_cast<std::size_t>(k)];
    }
    obs_total += result.obs_total;
    obs_completed_paths += result.obs_completed_paths;
    obs_committed_bytes += result.obs_committed_bytes;
  }
}

void FleetAggregates::MergeFrom(const FleetAggregates& other) {
  devices += other.devices;
  errors += other.errors;
  if (first_error.empty()) {
    first_error = other.first_error;
  }
  completed += other.completed;
  starved += other.starved;
  timed_out += other.timed_out;
  iterations += other.iterations;
  reboots += other.reboots;
  charging_us += other.charging_us;
  energy_nj += other.energy_nj;
  monitor_energy_nj += other.monitor_energy_nj;
  monitor_events += other.monitor_events;
  monitor_events_elided += other.monitor_events_elided;
  violations += other.violations;
  devices_with_violations += other.devices_with_violations;
  commits += other.commits;
  aborts += other.aborts;
  skips += other.skips;
  energy_uj_hist.MergeFrom(other.energy_uj_hist);
  violations_hist.MergeFrom(other.violations_hist);
  attempts_hist.MergeFrom(other.attempts_hist);
  has_obs = has_obs || other.has_obs;
  for (int k = 0; k < obs::kNumKinds; ++k) {
    obs_counts[static_cast<std::size_t>(k)] += other.obs_counts[static_cast<std::size_t>(k)];
  }
  obs_total += other.obs_total;
  obs_completed_paths += other.obs_completed_paths;
  obs_committed_bytes += other.obs_committed_bytes;
  has_traffic = has_traffic || other.has_traffic;
  for (std::size_t c = 0; c < class_traffic.size(); ++c) {
    class_traffic[c] += other.class_traffic[c];
  }
  if (entry_traffic.size() < other.entry_traffic.size()) {
    entry_traffic.resize(other.entry_traffic.size());
  }
  for (std::size_t m = 0; m < other.entry_traffic.size(); ++m) {
    std::vector<std::uint64_t>& dst = entry_traffic[m];
    const std::vector<std::uint64_t>& src = other.entry_traffic[m];
    if (dst.size() < src.size()) {
      dst.resize(src.size(), 0);
    }
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst[i] += src[i];
    }
  }
}

DeviceConfig ConfigForDevice(const FleetSpec& spec, std::uint64_t index) {
  DeviceConfig config;
  config.index = index;
  config.seed = DeviceSeed(spec.seed, index);
  config.charge = spec.charges.empty() ? 0 : spec.charges[index % spec.charges.size()];
  config.budget = spec.budgets.empty() ? 19'500.0 : spec.budgets[index % spec.budgets.size()];
  config.backend = spec.backend;
  config.iterations = spec.iterations;
  config.horizon = spec.horizon;
  if (spec.max_steps != 0) {
    config.max_steps = spec.max_steps;
  } else {
    // Sweep-parity default for finite runs; horizon mode is bounded by
    // simulated time, so the step valve moves out of the way.
    config.max_steps = spec.iterations == 0 ? (1ull << 62) : 2'000'000;
  }
  config.collect_obs = spec.collect_obs;
  return config;
}

StatusOr<FleetOutcome> RunFleet(const FleetSpec& spec) {
  if (spec.devices == 0) {
    return Status::Invalid("fleet: need at least one device");
  }
  if (spec.monitor != "scalar" && spec.monitor != "batch") {
    return Status::Invalid("fleet: unknown monitor mode '" + spec.monitor +
                           "' (scalar|batch)");
  }
  if (spec.monitor == "batch" && spec.backend != MonitorBackend::kCompiled) {
    return Status::Invalid("fleet: batch monitor mode requires the compiled backend");
  }
  if (spec.charges.empty() || spec.budgets.empty()) {
    return Status::Invalid("fleet: charges/budgets axes must be non-empty");
  }
  if (spec.tile == 0) {
    return Status::Invalid("fleet: tile must be >= 1");
  }

  std::string spec_text = spec.spec_text;
  if (spec_text.empty()) {
    StatusOr<std::string> fallback = DefaultSpecForApp(spec.app);
    if (!fallback.ok()) {
      return fallback.status();
    }
    spec_text = std::move(fallback).value();
  }

  // One pipeline run for the whole fleet: parse/validate/lower/compile
  // against a template graph, shared read-only across every shard.
  const AppGraph template_graph = sweep::BuildAppGraphByName(spec.app);
  const SpecArtifactStage stage = spec.monitor == "batch"
                                      ? SpecArtifactStage::kCompiled
                                      : StageForBackend(spec.backend);
  StatusOr<SharedSpecArtifactPtr> artifact = BuildSpecArtifact(spec_text, template_graph, stage);
  if (!artifact.ok()) {
    return artifact.status();
  }

  // Analyzer gate (sweep parity): one analysis of the fleet's single spec
  // against its energy axes before any of the N devices burns time. A
  // deployment whose properties are statically infeasible fails here with
  // the rendered diagnostics, identically for any --shards value.
  if (spec.analyze) {
    const Status gate = sweep::PreAnalyzeSpec(
        "fleet", spec.spec_label, spec_text, template_graph, spec.budgets,
        spec.charges, /*flight=*/"off", /*flight_bytes=*/1024);
    if (!gate.ok()) {
      return gate;
    }
  }

  FleetContext ctx;
  ctx.app = spec.app;
  ctx.artifact = artifact.value();

  const int shards = ClampWorkers(spec.shards, static_cast<std::size_t>(std::min<std::uint64_t>(
                                                   spec.devices, 64)));
  const std::vector<ShardRange> cpu_map = BuildCpuMap(spec.devices, shards);
  std::vector<FleetAggregates> partials(cpu_map.size());

  RunWorkers(shards, [&](int worker) {
    const ShardRange range = cpu_map[static_cast<std::size_t>(worker)];
    FleetAggregates& agg = partials[static_cast<std::size_t>(worker)];
    if (spec.monitor == "scalar") {
      for (std::uint64_t i = range.begin; i < range.end; ++i) {
        DeviceInstance instance(ctx, ConfigForDevice(spec, i));
        agg.Fold(instance.RunScalar());
      }
      return;
    }
    // Batch mode: simulate a tile of devices (capturing their monitor
    // traffic), advance all their monitors together, fold, reuse the
    // tile buffers for the next slice of the range.
    TileStepper stepper(ctx.artifact, spec.tile, ArbitrationPolicy::kSeverity);
    if (spec.collect_traffic) {
      stepper.EnableTraffic();
    }
    std::vector<DeviceResult> results(spec.tile);
    std::vector<std::vector<CapturedRecord>> streams;
    std::vector<DeviceResult*> result_ptrs;
    for (std::uint64_t begin = range.begin; begin < range.end; begin += spec.tile) {
      const std::uint64_t end = std::min<std::uint64_t>(begin + spec.tile, range.end);
      const std::uint32_t n = static_cast<std::uint32_t>(end - begin);
      streams.assign(n, {});
      result_ptrs.assign(n, nullptr);
      for (std::uint32_t lane = 0; lane < n; ++lane) {
        DeviceInstance instance(ctx, ConfigForDevice(spec, begin + lane));
        results[lane] = instance.RunCapture(&streams[lane]);
        result_ptrs[lane] = &results[lane];
      }
      stepper.RunTile(streams, result_ptrs);
      for (std::uint32_t lane = 0; lane < n; ++lane) {
        agg.Fold(results[lane]);
      }
    }
    if (spec.collect_traffic) {
      stepper.FoldTraffic(&agg);
    }
  });

  FleetOutcome outcome;
  outcome.devices = spec.devices;
  outcome.shards = shards;
  for (const FleetAggregates& partial : partials) {
    outcome.agg.MergeFrom(partial);
  }
  if (spec.monitor == "batch") {
    TileStepper probe(ctx.artifact, 1, ArbitrationPolicy::kSeverity);
    outcome.handler_classes = probe.ClassHistogram();
    outcome.dead_columns = probe.dead_columns();
    outcome.total_columns = probe.total_columns();
    if (outcome.agg.has_traffic) {
      // Resolve every non-zero entry counter to names via a probe machine
      // (the counters come from the shard workers; the layout is identical
      // because every stepper compiles the same artifact), sort hottest
      // first with a (machine, entry) tie-break, and keep the head — the
      // tail is a long flat list of cold entries.
      struct RawRow {
        std::size_t machine;
        std::uint32_t entry;
        std::uint64_t events;
      };
      std::vector<RawRow> rows;
      for (std::size_t m = 0;
           m < outcome.agg.entry_traffic.size() && m < probe.machine_count(); ++m) {
        const std::vector<std::uint64_t>& counters = outcome.agg.entry_traffic[m];
        for (std::uint32_t e = 0; e < counters.size(); ++e) {
          if (counters[e] > 0) {
            rows.push_back(RawRow{m, e, counters[e]});
          }
        }
      }
      std::sort(rows.begin(), rows.end(), [](const RawRow& a, const RawRow& b) {
        if (a.events != b.events) {
          return a.events > b.events;
        }
        if (a.machine != b.machine) {
          return a.machine < b.machine;
        }
        return a.entry < b.entry;
      });
      constexpr std::size_t kMaxTrafficRows = 16;
      if (rows.size() > kMaxTrafficRows) {
        rows.resize(kMaxTrafficRows);
      }
      static constexpr const char* kClassNames[] = {
          "self_loop", "commit", "store_field_commit", "guard_elapsed_commit", "general"};
      for (const RawRow& raw : rows) {
        const BatchCompiledMonitor& m = probe.machine(raw.machine);
        const BatchCompiledMonitor::EntryInfo info = m.DecodeEntry(raw.entry);
        FleetTrafficRow row;
        row.machine = static_cast<int>(raw.machine);
        row.state = m.machine().state_names[info.state];
        row.kind = info.kind;
        row.task = info.task;
        row.handler_class =
            kClassNames[static_cast<std::size_t>(m.EntryClass(raw.entry))];
        row.events = raw.events;
        outcome.traffic.push_back(std::move(row));
      }
    }
  }
  return outcome;
}

std::string RenderFleetJson(const FleetSpec& spec, const FleetOutcome& outcome) {
  const FleetAggregates& a = outcome.agg;
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"artemis-fleet/1\",\n";
  out += "  \"app\": \"" + JsonEscape(spec.app) + "\",\n";
  out += "  \"spec\": \"" + JsonEscape(spec.spec_label) + "\",\n";
  out += "  \"backend\": \"" + std::string(MonitorBackendName(spec.backend)) + "\",\n";
  out += "  \"monitor_mode\": \"" + JsonEscape(spec.monitor) + "\",\n";
  out += "  \"devices\": " + U64(spec.devices) + ",\n";
  out += "  \"seed\": " + U64(spec.seed) + ",\n";
  out += "  \"iterations\": " + U64(spec.iterations) + ",\n";
  out += "  \"horizon_us\": " + U64(spec.horizon) + ",\n";
  out += "  \"charges_us\": [";
  for (std::size_t i = 0; i < spec.charges.size(); ++i) {
    out += (i == 0 ? "" : ", ") + U64(spec.charges[i]);
  }
  out += "],\n";
  out += "  \"aggregates\": {\n";
  out += "    \"devices\": " + U64(a.devices) + ",\n";
  out += "    \"errors\": " + U64(a.errors) + ",\n";
  out += "    \"completed\": " + U64(a.completed) + ",\n";
  out += "    \"starved\": " + U64(a.starved) + ",\n";
  out += "    \"timed_out\": " + U64(a.timed_out) + ",\n";
  out += "    \"iterations\": " + U64(a.iterations) + ",\n";
  out += "    \"reboots\": " + U64(a.reboots) + ",\n";
  out += "    \"charging_us\": " + U64(a.charging_us) + ",\n";
  out += "    \"energy_nj\": " + U64(a.energy_nj) + ",\n";
  out += "    \"monitor_energy_nj\": " + U64(a.monitor_energy_nj) + ",\n";
  out += "    \"monitor_share\": " + Ratio(a.monitor_energy_nj, a.energy_nj) + ",\n";
  out += "    \"monitor_events\": " + U64(a.monitor_events) + ",\n";
  out += "    \"monitor_events_elided\": " + U64(a.monitor_events_elided) + ",\n";
  out += "    \"elision_rate\": " + Ratio(a.monitor_events_elided, a.monitor_events) + ",\n";
  out += "    \"violations\": " + U64(a.violations) + ",\n";
  out += "    \"violation_rate\": " + Ratio(a.violations, a.monitor_events) + ",\n";
  out += "    \"devices_with_violations\": " + U64(a.devices_with_violations) + ",\n";
  out += "    \"commits\": " + U64(a.commits) + ",\n";
  out += "    \"aborts\": " + U64(a.aborts) + ",\n";
  out += "    \"skips\": " + U64(a.skips) + "\n";
  out += "  },\n";
  out += "  \"energy_uj\": \"" + a.energy_uj_hist.Summary() + "\",\n";
  out += "  \"violations_per_device\": \"" + a.violations_hist.Summary() + "\",\n";
  out += "  \"attempts_per_commit\": \"" + a.attempts_hist.Summary() + "\"";
  if (!outcome.handler_classes.empty()) {
    out += ",\n  \"batch\": {\n";
    out += "    \"handler_classes\": [";
    for (std::size_t i = 0; i < outcome.handler_classes.size(); ++i) {
      out += (i == 0 ? "" : ", ") + U64(outcome.handler_classes[i]);
    }
    out += "],\n";
    out += "    \"dead_columns\": " + U64(outcome.dead_columns) + ",\n";
    out += "    \"columns\": " + U64(outcome.total_columns) + "\n";
    out += "  }";
  }
  if (a.has_traffic) {
    out += ",\n  \"class_traffic\": {";
    static constexpr const char* kClassKeys[] = {
        "self_loop", "commit", "store_field_commit", "guard_elapsed_commit", "general"};
    for (std::size_t c = 0; c < a.class_traffic.size(); ++c) {
      out += std::string(c == 0 ? "" : ", ") + "\"" + kClassKeys[c] +
             "\": " + U64(a.class_traffic[c]);
    }
    out += "},\n  \"traffic\": [";
    for (std::size_t i = 0; i < outcome.traffic.size(); ++i) {
      const FleetTrafficRow& row = outcome.traffic[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"machine\": " + U64(static_cast<std::uint64_t>(row.machine)) +
             ", \"state\": \"" + JsonEscape(row.state) + "\", \"kind\": \"" +
             (row.kind < 0 ? "any" : row.kind == 0 ? "start" : "end") + "\", \"task\": " +
             (row.task < 0 ? std::string("-1") : U64(static_cast<std::uint64_t>(row.task))) +
             ", \"class\": \"" + row.handler_class + "\", \"events\": " + U64(row.events) +
             "}";
    }
    out += outcome.traffic.empty() ? "]" : "\n  ]";
  }
  if (a.has_obs) {
    out += ",\n  \"obs\": {\n";
    out += "    \"total_events\": " + U64(a.obs_total) + ",\n";
    out += "    \"completed_paths\": " + U64(a.obs_completed_paths) + ",\n";
    out += "    \"committed_bytes\": " + U64(a.obs_committed_bytes) + ",\n";
    out += "    \"counts\": {";
    bool first = true;
    for (int k = 0; k < obs::kNumKinds; ++k) {
      const std::uint64_t count = a.obs_counts[static_cast<std::size_t>(k)];
      if (count == 0) {
        continue;
      }
      out += std::string(first ? "" : ", ") + "\"" +
             obs::KindName(static_cast<obs::Kind>(k)) + "\": " + U64(count);
      first = false;
    }
    out += "}\n  }";
  }
  if (!a.first_error.empty()) {
    out += ",\n  \"first_error\": \"" + JsonEscape(a.first_error) + "\"";
  }
  out += ",\n  \"ok\": ";
  out += outcome.AllOk() ? "true" : "false";
  out += "\n}\n";
  return out;
}

std::string RenderFleetTable(const FleetSpec& spec, const FleetOutcome& outcome) {
  const FleetAggregates& a = outcome.agg;
  std::string out;
  out += "fleet: app=" + spec.app + " spec=" + spec.spec_label +
         " backend=" + MonitorBackendName(spec.backend) + " monitor=" + spec.monitor +
         " devices=" + U64(spec.devices) + " seed=" + U64(spec.seed) + "\n";
  out += "outcomes: completed=" + U64(a.completed) + " timed_out=" + U64(a.timed_out) +
         " starved=" + U64(a.starved) + " errors=" + U64(a.errors) + "\n";
  out += "kernel: iterations=" + U64(a.iterations) + " reboots=" + U64(a.reboots) +
         " commits=" + U64(a.commits) + " aborts=" + U64(a.aborts) + " skips=" +
         U64(a.skips) + "\n";
  out += "monitor: events=" + U64(a.monitor_events) + " elided=" +
         U64(a.monitor_events_elided) + " elision_rate=" +
         Ratio(a.monitor_events_elided, a.monitor_events) + " violations=" +
         U64(a.violations) + " violation_rate=" + Ratio(a.violations, a.monitor_events) +
         " devices_with_violations=" + U64(a.devices_with_violations) + "\n";
  out += "energy: total_nj=" + U64(a.energy_nj) + " monitor_nj=" + U64(a.monitor_energy_nj) +
         " monitor_share=" + Ratio(a.monitor_energy_nj, a.energy_nj) + "\n";
  out += "energy_uj: " + a.energy_uj_hist.Summary() + "\n";
  out += "violations_per_device: " + a.violations_hist.Summary() + "\n";
  out += "attempts_per_commit: " + a.attempts_hist.Summary() + "\n";
  if (!outcome.handler_classes.empty()) {
    out += "batch: handler_classes=[";
    for (std::size_t i = 0; i < outcome.handler_classes.size(); ++i) {
      out += (i == 0 ? "" : ",") + U64(outcome.handler_classes[i]);
    }
    out += "] dead_columns=" + U64(outcome.dead_columns) + "/" +
           U64(outcome.total_columns) + "\n";
  }
  for (const FleetTrafficRow& row : outcome.traffic) {
    out += "traffic: machine=" + U64(static_cast<std::uint64_t>(row.machine)) + " state=" +
           row.state + " kind=" +
           (row.kind < 0 ? "any" : row.kind == 0 ? "start" : "end") + " task=" +
           (row.task < 0 ? std::string("any") : U64(static_cast<std::uint64_t>(row.task))) +
           " class=" + row.handler_class + " events=" + U64(row.events) + "\n";
  }
  if (!a.first_error.empty()) {
    out += "first_error: " + a.first_error + "\n";
  }
  return out;
}

}  // namespace artemis::fleet
