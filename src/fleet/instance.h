// DeviceInstance: one simulated intermittent device, packaged as a
// compact, relocatable record for fleet-scale time-slicing (src/fleet).
//
// A fleet run provisions and retires millions of these, so the contract
// is strict:
//
//  * everything a device owns — NvmArena image, capacitor + persistent
//    clock scalars, kernel/monitor state — hangs off this one object; no
//    pointer reaches into another instance, so instances can be built,
//    run, and destroyed on any shard worker in any order;
//  * everything devices share — the compiled spec artifact, cost model,
//    app-graph template — is read-only behind a FleetContext, so sharing
//    it across worker threads is safe by construction;
//  * a device's result depends only on its DeviceConfig (index, seed,
//    energy axes); never on which shard ran it or when.
//
// Two monitor modes:
//
//  * scalar — the full in-loop MonitorSet stack, verdicts feed back into
//    the kernel (corrective actions fire). A single-device fleet run in
//    this mode is the same computation as one sweep point
//    (tests/fleet_test.cc pins this equivalence).
//  * capture — monitor *costs* are charged in-loop (same cycles, same
//    resume-after-outage accounting as MonitorSet), but events are
//    recorded into a host-side stream instead of being stepped; the
//    fleet layer later advances all devices' monitors together through
//    the batched SoA VM (src/monitor/compiled_batch.h). Verdicts cannot
//    feed back, so corrective actions never fire: capture mode is the
//    observe-only device twin, and diverges from scalar mode exactly
//    when a scalar run would have fired a corrective action.
#ifndef SRC_FLEET_INSTANCE_H_
#define SRC_FLEET_INSTANCE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/core/obs_stats.h"
#include "src/core/runtime.h"
#include "src/kernel/app_graph.h"
#include "src/kernel/checker.h"
#include "src/kernel/kernel.h"
#include "src/monitor/monitor_set.h"
#include "src/monitor/shared_spec.h"
#include "src/obs/bus.h"
#include "src/sim/mcu.h"

namespace artemis::fleet {

// Everything that distinguishes device i from device j. Integral where
// possible so configs can be derived from the fleet axes without
// accumulating float state.
struct DeviceConfig {
  std::uint64_t index = 0;
  std::uint64_t seed = 1;
  EnergyUj budget = 19'500.0;
  SimDuration charge = 0;  // charging delay after each on-period; 0 = continuous
  MonitorBackend backend = MonitorBackend::kCompiled;
  // Horizon: run `iterations` full passes over the path set, or — when
  // iterations == 0 — loop until `horizon` simulated time is reached.
  std::uint64_t iterations = 1;
  SimDuration horizon = 8 * kHour;
  std::uint64_t max_steps = 2'000'000;
  bool collect_obs = false;
};

// Per-device outcome, reduced to integers (plus the rare error string) so
// shard merges are associative and byte-exact for any shard count:
// energy folds as nanojoules, never as a float sum.
struct DeviceResult {
  bool ok = false;
  std::string error;

  bool completed = false;
  bool starved = false;
  bool timed_out = false;
  std::uint64_t finished_at_us = 0;
  std::uint64_t iterations = 0;
  std::uint64_t reboots = 0;
  std::uint64_t charging_us = 0;
  std::uint64_t energy_nj = 0;          // total simulated energy
  std::uint64_t monitor_energy_nj = 0;  // CostTag::kMonitor share
  std::uint64_t monitor_events = 0;
  // Of monitor_events, how many the batch pass consumed via the dead-column
  // check without dispatching (provably self-loops in every machine).
  // Always 0 in scalar mode. Subset of monitor_events, never additional.
  std::uint64_t monitor_events_elided = 0;
  std::uint64_t violations = 0;  // scalar: in-loop; capture: batch pass fills it
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t skips = 0;
  // Worst per-task executions-per-commit observed on this device
  // ((commits + aborts) / commits, ceil'd), the Figure 13 re-execution
  // metric; 0 when nothing committed.
  std::uint64_t max_attempts_per_commit = 0;

  // Obs-bus fold (DeviceConfig::collect_obs): counts by obs::Kind plus the
  // aggregator's scalar totals.
  bool has_obs = false;
  std::array<std::uint64_t, obs::kNumKinds> obs_counts{};
  std::uint64_t obs_total = 0;
  std::uint64_t obs_completed_paths = 0;
  std::uint64_t obs_committed_bytes = 0;
};

// Captured monitor traffic from one capture-mode device: the events in
// delivery order, interleaved with the path-restart notifications the
// batch pass must replay to reset path-scoped machines at the right spot.
struct CapturedRecord {
  enum class Kind : std::uint8_t { kEvent, kPathRestart };
  Kind kind = Kind::kEvent;
  MonitorEvent event;        // kEvent
  PathId restart_path = kNoPath;  // kPathRestart
};

// PropertyChecker that charges exactly the cycles MonitorSet would charge
// (interface crossing, per-monitor step, resume-after-outage continuation,
// path-restart application) but records the event stream instead of
// stepping monitors. Never returns a verdict.
class CaptureChecker final : public PropertyChecker {
 public:
  // `step_cycles[i]` is monitor i's per-event cost; `fram_bytes` the
  // MonitorSet footprint to mirror in the NVM arena image.
  CaptureChecker(std::vector<double> step_cycles, std::size_t fram_bytes);

  void HardReset(Mcu& mcu) override;
  void Finalize(Mcu& mcu) override;
  CheckOutcome OnEvent(const MonitorEvent& event, Mcu& mcu) override;
  void OnPathRestart(PathId path, Mcu& mcu) override;
  std::string Name() const override { return "fleet-capture"; }

  const std::vector<CapturedRecord>& records() const { return records_; }
  std::vector<CapturedRecord>&& TakeRecords() { return std::move(records_); }
  std::uint64_t events_captured() const { return events_captured_; }

 private:
  std::vector<double> step_cycles_;
  std::size_t fram_bytes_ = 0;
  bool arena_registered_ = false;

  // Mirror of MonitorSet's FRAM-resident progress state.
  bool in_progress_ = false;
  std::uint64_t cursor_seq_ = 0;
  std::size_t cursor_ = 0;
  bool has_done_ = false;
  std::uint64_t done_seq_ = 0;

  std::vector<CapturedRecord> records_;
  std::uint64_t events_captured_ = 0;
};

// Read-only state shared by every instance of one fleet run. Each
// instance builds its own AppGraph from `app` (the sweep engine's
// one-graph-per-simulation isolation rule); the compiled artifact is
// immutable by construction and shared across all shards.
struct FleetContext {
  std::string app = "health";
  SharedSpecArtifactPtr artifact;
};

class DeviceInstance {
 public:
  DeviceInstance(const FleetContext& ctx, const DeviceConfig& config);

  // Builds the device (power model, NVM arena, kernel, monitors) and runs
  // it to completion with in-loop monitors. One-shot.
  DeviceResult RunScalar();

  // Capture-mode run: same device, monitor cycles charged but events
  // captured into `records` for the batched monitor pass. `monitor_events`
  // and `violations` are left 0 in the result; the fleet layer fills them
  // after the batch pass. One-shot.
  DeviceResult RunCapture(std::vector<CapturedRecord>* records);

 private:
  DeviceResult Finish(const KernelRunResult& run, const IntermittentKernel& kernel,
                      std::uint64_t monitor_events, std::uint64_t violations,
                      const ObsStatsAggregator* agg) const;

  const FleetContext& ctx_;
  DeviceConfig config_;
};

// Deterministic per-device seed stream: SplitMix64 over (fleet_seed,
// index), so a device's RNG depends only on its fleet coordinates — never
// on the shard that runs it. Seeds are never 0 (Rng requirement).
std::uint64_t DeviceSeed(std::uint64_t fleet_seed, std::uint64_t device_index);

}  // namespace artemis::fleet

#endif  // SRC_FLEET_INSTANCE_H_
