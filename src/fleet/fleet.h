// Fleet-scale device-twin engine: time-slices N simulated intermittent
// devices (src/fleet/instance.h) across J shard workers and folds their
// results into deterministic fleet aggregates.
//
// Sharding (docs/fleet.md). The cpu-map is blk-mq style: the device index
// space [0, N) is cut into J contiguous ranges at fleet start — shard s
// owns N/J devices plus one spare when s < N%J — and each worker owns its
// range exclusively. Nothing is claimed, locked, or stolen on the hot
// path; the only synchronization is the fork/join around the run
// (src/base/thread_pool.h) and one post-join merge pass.
//
// Determinism contract: the rendered output is byte-identical for any
// --shards value.
//  * a device's behaviour depends only on its index: its RNG seed is
//    DeviceSeed(fleet_seed, index) and its energy axes are index-derived
//    (round-robin over the charge/budget lists);
//  * every aggregate sum is integral (energy folds as nanojoules,
//    histograms count integer samples), so folding is associative;
//  * per-shard partials are merged in shard order after the join, which
//    equals the single-shard fold order because ranges are contiguous.
//
// Monitor modes: "scalar" steps monitors in-loop per device (full verdict
// feedback); "batch" captures each device's event stream and advances all
// devices of a tile together through the SoA batch VM
// (src/monitor/compiled_batch.h), arbitrating per event per lane exactly
// like MonitorSet does per event. See docs/fleet.md for the observe-only
// caveat on batch mode.
#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/fleet/instance.h"
#include "src/monitor/monitor_set.h"

namespace artemis::fleet {

struct FleetSpec {
  std::string app = "health";  // health | greenhouse | ar
  // Property spec text; empty = the app's embedded default spec.
  std::string spec_text;
  std::string spec_label = "default";
  MonitorBackend backend = MonitorBackend::kCompiled;
  // "scalar" (in-loop MonitorSet) or "batch" (captured streams + SoA VM;
  // requires the compiled backend).
  std::string monitor = "batch";
  std::uint64_t devices = 1;
  int shards = 1;
  std::uint64_t seed = 1;
  // Device energy axes, assigned round-robin by device index (device i
  // gets charges[i % charges.size()], budgets[i % budgets.size()]).
  std::vector<SimDuration> charges = {0};
  std::vector<EnergyUj> budgets = {19'500.0};
  // Horizon: iterations > 0 runs that many passes over the path set;
  // iterations == 0 loops until `horizon` simulated time.
  std::uint64_t iterations = 1;
  SimDuration horizon = 8 * kHour;
  // Kernel step safety valve; 0 = auto (sweep-parity 2M for finite
  // iterations, effectively unbounded for horizon mode).
  std::uint64_t max_steps = 0;
  // Devices batched per monitor tile in "batch" mode (bounds host memory:
  // one captured event stream per in-flight device).
  std::uint32_t tile = 256;
  // Attach a per-device obs bus + ObsStatsAggregator and fold the counts
  // (zero simulated cycles, like sweep's collect_stats).
  bool collect_obs = false;
  // Batch mode only: count events per dispatch entry while stepping (the
  // measured dispatch-entry mix, vs. the static handler-class histogram)
  // and surface the hot entries through FleetOutcome::traffic. Costs one
  // counter increment per dispatched lane-event.
  bool collect_traffic = false;
  // Sweep-parity fail-fast gate: run the whole-system static analyzer
  // (src/analysis) over the fleet's spec against its charge/budget axes
  // before any device simulates; analyzer errors abort the fleet with a
  // Status (exit 2 from artemisc). `--no-analyze` opts out.
  bool analyze = true;
};

// Contiguous device range owned by one shard; end exclusive.
struct ShardRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

// The static cpu-map: `shards` contiguous balanced ranges covering
// [0, devices). Ranges never overlap; earlier shards get the spares.
std::vector<ShardRange> BuildCpuMap(std::uint64_t devices, int shards);

// Deterministic integer histogram: power-of-two buckets over uint64
// samples. All state is integral, so MergeFrom in shard order reproduces
// the single-shard fold bit-for-bit.
class FleetHistogram {
 public:
  void Record(std::uint64_t sample);
  void MergeFrom(const FleetHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t sum() const { return sum_; }
  // Upper bound of the bucket holding the p-quantile sample (p in [0,1]).
  std::uint64_t Percentile(double p) const;
  std::string Summary() const;  // "n=.. min=.. p50=.. p90=.. p99=.. max=.."

 private:
  static constexpr int kBuckets = 64;
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

// Integral fleet-wide fold of DeviceResults. Fold order = device index
// order (within a shard by construction, across shards via MergeFrom).
struct FleetAggregates {
  std::uint64_t devices = 0;
  std::uint64_t errors = 0;
  std::uint64_t completed = 0;
  std::uint64_t starved = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t iterations = 0;
  std::uint64_t reboots = 0;
  std::uint64_t charging_us = 0;
  std::uint64_t energy_nj = 0;
  std::uint64_t monitor_energy_nj = 0;
  std::uint64_t monitor_events = 0;
  std::uint64_t monitor_events_elided = 0;  // dead-column subset of the above
  std::uint64_t violations = 0;
  std::uint64_t devices_with_violations = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t skips = 0;

  FleetHistogram energy_uj_hist;      // per-device total energy, in uJ
  FleetHistogram violations_hist;     // per-device violation count
  FleetHistogram attempts_hist;       // per-device worst attempts-per-commit

  bool has_obs = false;
  std::array<std::uint64_t, obs::kNumKinds> obs_counts{};
  std::uint64_t obs_total = 0;
  std::uint64_t obs_completed_paths = 0;
  std::uint64_t obs_committed_bytes = 0;

  // Runtime dispatch-entry traffic (FleetSpec::collect_traffic): events per
  // handler class (kSelfLoop..kGeneral) and per (machine, entry) counter.
  // Pure uint64 sums, so shard merges stay order-independent.
  bool has_traffic = false;
  std::array<std::uint64_t, 5> class_traffic{};
  std::vector<std::vector<std::uint64_t>> entry_traffic;  // [machine][entry]

  std::string first_error;  // first failing device's error, by index

  void Fold(const DeviceResult& result);
  void MergeFrom(const FleetAggregates& other);
};

// One hot dispatch entry from the runtime traffic profile, pre-resolved to
// names so renderers stay pure formatting. kind/task are -1 for a machine's
// shared any-task row.
struct FleetTrafficRow {
  int machine = 0;
  std::string state;
  int kind = 0;
  int task = 0;
  std::string handler_class;
  std::uint64_t events = 0;
};

struct FleetOutcome {
  FleetAggregates agg;
  std::uint64_t devices = 0;
  int shards = 1;  // as run (informational; never affects aggregate bytes)
  // Batch-VM handler-class histogram (kSelfLoop..kGeneral, summed over
  // machines), empty in scalar mode.
  std::vector<std::uint64_t> handler_classes;
  // Dead-column elision facts (batch mode): (kind, task) columns that are
  // kSelfLoop in EVERY machine — events on them are consumed at feed time
  // without ever reaching the batch VM — over the total column count.
  std::uint32_t dead_columns = 0;
  std::uint32_t total_columns = 0;
  // Hottest dispatch entries by measured traffic (collect_traffic only),
  // sorted by events descending; ties broken by (machine, entry) order so
  // the list is deterministic for any shard count.
  std::vector<FleetTrafficRow> traffic;

  bool AllOk() const { return agg.errors == 0; }
};

// Expands per-device configs from the fleet axes. Exposed for the
// equivalence tests (a single-device fleet must match a sweep point).
DeviceConfig ConfigForDevice(const FleetSpec& spec, std::uint64_t index);

// Runs the whole fleet across `spec.shards` workers.
StatusOr<FleetOutcome> RunFleet(const FleetSpec& spec);

// Deterministic renderings: no host timing, no shard count in the
// aggregate body, so bytes depend only on the fleet axes and results.
std::string RenderFleetJson(const FleetSpec& spec, const FleetOutcome& outcome);
std::string RenderFleetTable(const FleetSpec& spec, const FleetOutcome& outcome);

}  // namespace artemis::fleet

#endif  // SRC_FLEET_FLEET_H_
