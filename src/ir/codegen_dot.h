// Graphviz rendering of intermediate-language state machines, matching the
// Figure 7 diagrams. Used by docs and the codegen_demo example.
#ifndef SRC_IR_CODEGEN_DOT_H_
#define SRC_IR_CODEGEN_DOT_H_

#include <string>
#include <vector>

#include "src/ir/state_machine.h"
#include "src/kernel/app_graph.h"

namespace artemis {

// One digraph per machine; `graph` resolves task ids to names for trigger
// labels.
std::string MachineToDot(const StateMachine& machine, const AppGraph& graph);

// All machines in a single DOT document (clustered).
std::string MachinesToDot(const std::vector<StateMachine>& machines, const AppGraph& graph);

}  // namespace artemis

#endif  // SRC_IR_CODEGEN_DOT_H_
