// Graphviz rendering of intermediate-language state machines, matching the
// Figure 7 diagrams. Used by docs and the codegen_demo example. The static
// analyzer (src/analysis) can supply per-machine annotations that shade
// dead states and transitions gray in the rendered graph.
#ifndef SRC_IR_CODEGEN_DOT_H_
#define SRC_IR_CODEGEN_DOT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ir/state_machine.h"
#include "src/kernel/app_graph.h"

namespace artemis {

// Visual annotations for one machine: states/transitions the analyzer
// proved dead are drawn grayed-out (filled gray nodes, dashed gray edges).
struct DotStyle {
  std::set<std::string> dead_states;
  std::set<int> dead_transitions;  // indices into machine.transitions
};

// Machine name -> style.
using DotAnnotations = std::map<std::string, DotStyle>;

// One digraph per machine; `graph` resolves task ids to names for trigger
// labels.
std::string MachineToDot(const StateMachine& machine, const AppGraph& graph,
                         const DotStyle* style = nullptr);

// All machines in a single DOT document (clustered).
std::string MachinesToDot(const std::vector<StateMachine>& machines, const AppGraph& graph,
                          const DotAnnotations* annotations = nullptr);

}  // namespace artemis

#endif  // SRC_IR_CODEGEN_DOT_H_
