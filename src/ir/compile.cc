#include "src/ir/compile.h"

#include <map>
#include <sstream>

namespace artemis {
namespace {

const char* OpName(OpCode op) {
  switch (op) {
    case OpCode::kPushConst:
      return "push_const";
    case OpCode::kPushSlot:
      return "push_slot";
    case OpCode::kPushField:
      return "push_field";
    case OpCode::kAdd:
      return "add";
    case OpCode::kSub:
      return "sub";
    case OpCode::kMul:
      return "mul";
    case OpCode::kDiv:
      return "div";
    case OpCode::kLt:
      return "lt";
    case OpCode::kLe:
      return "le";
    case OpCode::kGt:
      return "gt";
    case OpCode::kGe:
      return "ge";
    case OpCode::kEq:
      return "eq";
    case OpCode::kNe:
      return "ne";
    case OpCode::kAnd:
      return "and";
    case OpCode::kOr:
      return "or";
    case OpCode::kNot:
      return "not";
    case OpCode::kNeg:
      return "neg";
    case OpCode::kStoreSlot:
      return "store_slot";
    case OpCode::kStoreField:
      return "store_field";
    case OpCode::kFieldMinusSlot:
      return "field_minus_slot";
    case OpCode::kAddConstSlot:
      return "add_const_slot";
    case OpCode::kJumpIfZero:
      return "jz";
    case OpCode::kJump:
      return "jmp";
    case OpCode::kJumpIfNotLt:
      return "jnlt";
    case OpCode::kJumpIfNotLe:
      return "jnle";
    case OpCode::kJumpIfNotGt:
      return "jngt";
    case OpCode::kJumpIfNotGe:
      return "jnge";
    case OpCode::kJumpIfNotEq:
      return "jneq";
    case OpCode::kJumpIfNotNe:
      return "jnne";
    case OpCode::kJumpIfNotAnd:
      return "jnand";
    case OpCode::kJumpIfNotOr:
      return "jnor";
    case OpCode::kJumpIfNotElapsedLt:
      return "jne_lt";
    case OpCode::kJumpIfNotElapsedLe:
      return "jne_le";
    case OpCode::kJumpIfNotElapsedGt:
      return "jne_gt";
    case OpCode::kJumpIfNotElapsedGe:
      return "jne_ge";
    case OpCode::kJumpIfNotElapsedEq:
      return "jne_eq";
    case OpCode::kJumpIfNotElapsedNe:
      return "jne_ne";
    case OpCode::kStoreFieldCommit:
      return "store_field_commit";
    case OpCode::kGuardCommitElapsedLt:
      return "gc_lt";
    case OpCode::kGuardCommitElapsedLe:
      return "gc_le";
    case OpCode::kGuardCommitElapsedGt:
      return "gc_gt";
    case OpCode::kGuardCommitElapsedGe:
      return "gc_ge";
    case OpCode::kGuardCommitElapsedEq:
      return "gc_eq";
    case OpCode::kGuardCommitElapsedNe:
      return "gc_ne";
    case OpCode::kExtend:
      return "ext";
    case OpCode::kFail:
      return "fail";
    case OpCode::kCommit:
      return "commit";
    case OpCode::kNoMatch:
      return "no_match";
  }
  return "?";
}

OpCode BinOpCode(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return OpCode::kAdd;
    case BinOp::kSub:
      return OpCode::kSub;
    case BinOp::kMul:
      return OpCode::kMul;
    case BinOp::kDiv:
      return OpCode::kDiv;
    case BinOp::kLt:
      return OpCode::kLt;
    case BinOp::kLe:
      return OpCode::kLe;
    case BinOp::kGt:
      return OpCode::kGt;
    case BinOp::kGe:
      return OpCode::kGe;
    case BinOp::kEq:
      return OpCode::kEq;
    case BinOp::kNe:
      return OpCode::kNe;
    case BinOp::kAnd:
      return OpCode::kAnd;
    case BinOp::kOr:
      return OpCode::kOr;
  }
  return OpCode::kAdd;
}

bool IsElapsedJump(OpCode op) {
  return op >= OpCode::kJumpIfNotElapsedLt && op <= OpCode::kJumpIfNotElapsedNe;
}

// Maps a kJumpIfNotElapsed* op to its commit-on-pass twin (same ordering).
OpCode GuardCommitFor(OpCode op) {
  return static_cast<OpCode>(static_cast<int>(OpCode::kGuardCommitElapsedLt) +
                             static_cast<int>(op) -
                             static_cast<int>(OpCode::kJumpIfNotElapsedLt));
}

// Emits postfix bytecode into one CompiledMachine, tracking the operand
// stack depth exactly (the emission order is the execution order).
class Compiler {
 public:
  explicit Compiler(const StateMachine& machine) : src_(machine) {}

  StatusOr<CompiledMachine> Run() {
    Status valid = src_.Validate();
    if (!valid.ok()) {
      return valid;
    }
    if (src_.states.size() > 0xFFFF) {
      return Status::FailedPrecondition("machine '" + src_.name + "': too many states");
    }
    m_.name = src_.name;
    m_.property_label = src_.property_label;
    m_.anchor_task = src_.anchor_task;
    m_.path_scope = src_.path_scope;
    m_.reset_on_path_restart = src_.reset_on_path_restart;

    for (const std::string& state : src_.states) {
      state_ids_.emplace(state, static_cast<std::uint16_t>(m_.state_names.size()));
      m_.state_names.push_back(state);
    }
    m_.initial = state_ids_.at(src_.initial);
    for (const auto& [var, value] : src_.variables) {
      slot_ids_.emplace(var, static_cast<std::uint32_t>(m_.var_names.size()));
      m_.var_names.push_back(var);
      m_.initial_slots.push_back(value);
      const auto declared = src_.slot_types.find(var);
      m_.slot_types.push_back(declared != src_.slot_types.end() ? declared->second
                                                                : SlotType::kCounter);
    }

    // Transition metadata rides along index-aligned with src_.transitions;
    // the executable code is emitted per dispatch bucket in BuildDispatch.
    for (const Transition& t : src_.transitions) {
      CompiledTransition ct;
      ct.from = state_ids_.at(t.from);
      ct.to = state_ids_.at(t.to);
      ct.trigger = t.trigger;
      ct.task = t.task;
      m_.transitions.push_back(ct);
    }
    BuildDispatch();
    return std::move(m_);
  }

 private:
  std::uint32_t Pc() const { return static_cast<std::uint32_t>(m_.code.size()); }

  std::uint32_t Emit(OpCode op, std::uint32_t operand = 0) {
    m_.code.push_back(Instr{op, operand});
    return static_cast<std::uint32_t>(m_.code.size() - 1);
  }

  void Push() {
    ++depth_;
    if (depth_ > static_cast<int>(m_.max_stack)) {
      m_.max_stack = static_cast<std::uint32_t>(depth_);
    }
  }

  std::uint32_t InternConst(double value) {
    const auto it = const_ids_.find(value);
    if (it != const_ids_.end()) {
      return it->second;
    }
    const auto id = static_cast<std::uint32_t>(m_.const_pool.size());
    m_.const_pool.push_back(value);
    const_ids_.emplace(value, id);
    return id;
  }

  // True when `field` and `slot` both fit the packed 16/16 operand split
  // used by the fused superinstructions.
  static bool Packable(std::uint32_t hi, std::uint32_t lo) {
    return hi <= 0xFFFF && lo <= 0xFFFF;
  }

  void EmitExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kConst:
        Emit(OpCode::kPushConst, InternConst(e.constant));
        Push();
        break;
      case ExprKind::kVar:
        Emit(OpCode::kPushSlot, slot_ids_.at(e.var));
        Push();
        break;
      case ExprKind::kEventField:
        Emit(OpCode::kPushField, static_cast<std::uint32_t>(e.field));
        Push();
        break;
      case ExprKind::kBinary: {
        // Elapsed-time fusion: `event.field - var` is the shape of every
        // lowered time-window guard; collapse it to one dispatch.
        if (e.bin == BinOp::kSub && e.lhs->kind == ExprKind::kEventField &&
            e.rhs->kind == ExprKind::kVar) {
          const auto field = static_cast<std::uint32_t>(e.lhs->field);
          const std::uint32_t slot = slot_ids_.at(e.rhs->var);
          if (Packable(field, slot)) {
            Emit(OpCode::kFieldMinusSlot, (field << 16) | slot);
            Push();
            break;
          }
        }
        EmitExpr(*e.lhs);
        EmitExpr(*e.rhs);
        Emit(BinOpCode(e.bin));
        --depth_;
        break;
      }
      case ExprKind::kUnary:
        EmitExpr(*e.lhs);
        Emit(e.un == UnOp::kNot ? OpCode::kNot : OpCode::kNeg);
        break;
    }
  }

  void EmitStmts(const std::vector<StmtPtr>& body) {
    for (const StmtPtr& stmt : body) {
      switch (stmt->kind) {
        case StmtKind::kAssign: {
          const std::uint32_t slot = slot_ids_.at(stmt->var);
          const Expr& v = *stmt->value;
          // `var = event.field` — one dispatch instead of push+store.
          if (v.kind == ExprKind::kEventField &&
              Packable(static_cast<std::uint32_t>(v.field), slot)) {
            Emit(OpCode::kStoreField, (static_cast<std::uint32_t>(v.field) << 16) | slot);
            break;
          }
          // `var = var + c` / `var = c + var` — the lowered counter bump.
          if (v.kind == ExprKind::kBinary && v.bin == BinOp::kAdd) {
            const Expr* self = nullptr;
            const Expr* constant = nullptr;
            if (v.lhs->kind == ExprKind::kVar && v.rhs->kind == ExprKind::kConst) {
              self = v.lhs.get();
              constant = v.rhs.get();
            } else if (v.lhs->kind == ExprKind::kConst && v.rhs->kind == ExprKind::kVar) {
              constant = v.lhs.get();
              self = v.rhs.get();
            }
            if (self != nullptr && self->var == stmt->var) {
              const std::uint32_t cid = InternConst(constant->constant);
              if (Packable(cid, slot)) {
                Emit(OpCode::kAddConstSlot, (cid << 16) | slot);
                break;
              }
            }
          }
          EmitExpr(v);
          Emit(OpCode::kStoreSlot, slot);
          --depth_;
          break;
        }
        case StmtKind::kIf: {
          const std::uint32_t jz = EmitCondJump(*stmt->cond);
          EmitStmts(stmt->then_body);
          if (stmt->else_body.empty()) {
            m_.code[jz].operand = Pc();
          } else {
            const std::uint32_t jmp = Emit(OpCode::kJump);
            m_.code[jz].operand = Pc();
            EmitStmts(stmt->else_body);
            m_.code[jmp].operand = Pc();
          }
          break;
        }
        case StmtKind::kFail: {
          const auto id = static_cast<std::uint32_t>(m_.fail_pool.size());
          m_.fail_pool.push_back(FailRecord{stmt->action, stmt->target_path, stmt->property});
          Emit(OpCode::kFail, id);
          break;
        }
      }
    }
  }

  // Emits `cond` followed by a conditional jump taken when it is false,
  // returning the jump's index for later patching. When the expression's
  // final op is a comparison / and / or, the jump is fused into it
  // (kJumpIfNot*): one dispatch pops both operands and branches directly.
  std::uint32_t EmitCondJump(const Expr& cond) {
    // Whole-guard fusion: `event.field - var <cmp> const` becomes one
    // three-word kJumpIfNotElapsed* instruction, no stack traffic at all.
    if (cond.kind == ExprKind::kBinary && cond.rhs->kind == ExprKind::kConst &&
        cond.lhs->kind == ExprKind::kBinary && cond.lhs->bin == BinOp::kSub &&
        cond.lhs->lhs->kind == ExprKind::kEventField &&
        cond.lhs->rhs->kind == ExprKind::kVar) {
      OpCode elapsed;
      switch (cond.bin) {
        case BinOp::kLt:
          elapsed = OpCode::kJumpIfNotElapsedLt;
          break;
        case BinOp::kLe:
          elapsed = OpCode::kJumpIfNotElapsedLe;
          break;
        case BinOp::kGt:
          elapsed = OpCode::kJumpIfNotElapsedGt;
          break;
        case BinOp::kGe:
          elapsed = OpCode::kJumpIfNotElapsedGe;
          break;
        case BinOp::kEq:
          elapsed = OpCode::kJumpIfNotElapsedEq;
          break;
        case BinOp::kNe:
          elapsed = OpCode::kJumpIfNotElapsedNe;
          break;
        default:
          elapsed = OpCode::kExtend;  // Not a comparison; no fusion.
          break;
      }
      const auto field = static_cast<std::uint32_t>(cond.lhs->lhs->field);
      const std::uint32_t slot = slot_ids_.at(cond.lhs->rhs->var);
      if (elapsed != OpCode::kExtend && Packable(field, slot)) {
        Emit(elapsed, (field << 16) | slot);
        Emit(OpCode::kExtend, InternConst(cond.rhs->constant));
        // The target word is returned for the caller to patch.
        return Emit(OpCode::kExtend, 0);
      }
    }
    EmitExpr(cond);
    OpCode fused;
    switch (m_.code.back().op) {
      case OpCode::kLt:
        fused = OpCode::kJumpIfNotLt;
        break;
      case OpCode::kLe:
        fused = OpCode::kJumpIfNotLe;
        break;
      case OpCode::kGt:
        fused = OpCode::kJumpIfNotGt;
        break;
      case OpCode::kGe:
        fused = OpCode::kJumpIfNotGe;
        break;
      case OpCode::kEq:
        fused = OpCode::kJumpIfNotEq;
        break;
      case OpCode::kNe:
        fused = OpCode::kJumpIfNotNe;
        break;
      case OpCode::kAnd:
        fused = OpCode::kJumpIfNotAnd;
        break;
      case OpCode::kOr:
        fused = OpCode::kJumpIfNotOr;
        break;
      default: {
        const std::uint32_t jz = Emit(OpCode::kJumpIfZero);
        --depth_;
        return jz;
      }
    }
    // The binary op popped two and pushed one; the fused jump pops both
    // and pushes nothing, so account for one more pop.
    m_.code.back() = Instr{fused, 0};
    --depth_;
    return static_cast<std::uint32_t>(m_.code.size() - 1);
  }

  // Emits one handler program: every candidate transition inlined in
  // declaration order as
  //   <guard>  jump-if-false next; <body>  commit to
  // falling through to kNoMatch (implicit self-loop) if none fires.
  // Empty candidate lists share a single cached kNoMatch program.
  std::uint32_t EmitHandler(const std::vector<std::uint32_t>& candidates) {
    if (candidates.empty()) {
      if (empty_handler_ == kNoProgram) {
        empty_handler_ = Emit(OpCode::kNoMatch);
      }
      return empty_handler_;
    }
    const std::uint32_t entry = Pc();
    for (const std::uint32_t i : candidates) {
      const Transition& t = src_.transitions[i];
      depth_ = 0;
      std::uint32_t jz = kNoProgram;
      const std::uint32_t guard_at = Pc();
      if (t.guard != nullptr) {
        jz = EmitCondJump(*t.guard);
      }
      const std::uint32_t body_at = Pc();
      EmitStmts(t.body);
      const std::uint32_t commit_at = Emit(OpCode::kCommit, m_.transitions[i].to);
      // Whole-transition peepholes: fold the commit into the preceding
      // instruction so the two dominant transition shapes run in a single
      // dispatch. Word counts are unchanged, so no patch target moves.
      const bool elapsed_guard =
          jz != kNoProgram && jz == guard_at + 2 && IsElapsedJump(m_.code[guard_at].op);
      if (elapsed_guard && body_at == commit_at) {
        // [jne_*][const][target][commit] -> [gc_*][const][target][state]
        m_.code[guard_at].op = GuardCommitFor(m_.code[guard_at].op);
        m_.code[commit_at].op = OpCode::kExtend;
      } else if (commit_at > body_at && m_.code[commit_at - 1].op == OpCode::kStoreField &&
                 t.body.back()->kind == StmtKind::kAssign) {
        // [store_field][commit] -> [store_field_commit][state]. Only safe
        // when the trailing kStoreField is the body's last *top-level*
        // statement: jump targets inside the body always land at statement
        // starts, so none can target the rewritten commit word.
        m_.code[commit_at - 1].op = OpCode::kStoreFieldCommit;
        m_.code[commit_at].op = OpCode::kExtend;
      }
      if (jz != kNoProgram) {
        m_.code[jz].operand = Pc();
      }
    }
    Emit(OpCode::kNoMatch);
    return entry;
  }

  static EventKind TriggerEventKind(TriggerKind trigger) {
    return trigger == TriggerKind::kStartTask ? EventKind::kStartTask : EventKind::kEndTask;
  }

  void BuildDispatch() {
    m_.buckets.resize(m_.state_names.size());
    m_.any_handler.resize(m_.state_names.size(), kNoProgram);
    for (std::uint16_t s = 0; s < m_.state_names.size(); ++s) {
      // Transitions leaving `s`, in declaration order.
      std::vector<std::uint32_t> local;
      for (std::uint32_t i = 0; i < m_.transitions.size(); ++i) {
        if (m_.transitions[i].from == s) {
          local.push_back(i);
        }
      }
      // One bucket per distinct (kind, task) a start/end trigger names.
      for (const std::uint32_t i : local) {
        const CompiledTransition& t = m_.transitions[i];
        if (t.trigger == TriggerKind::kAnyEvent) {
          continue;
        }
        const EventKind kind = TriggerEventKind(t.trigger);
        bool seen = false;
        for (const CompiledMachine::Bucket& b : m_.buckets[s]) {
          seen = seen || (b.kind == kind && b.task == t.task);
        }
        if (seen) {
          continue;
        }
        std::vector<std::uint32_t> candidates;
        for (const std::uint32_t j : local) {
          const CompiledTransition& c = m_.transitions[j];
          const bool matches = c.trigger == TriggerKind::kAnyEvent ||
                               (TriggerEventKind(c.trigger) == kind && c.task == t.task);
          if (matches) {
            candidates.push_back(j);
          }
        }
        CompiledMachine::Bucket bucket;
        bucket.kind = kind;
        bucket.task = t.task;
        bucket.candidates = static_cast<std::uint32_t>(candidates.size());
        bucket.handler_pc = EmitHandler(candidates);
        m_.buckets[s].push_back(bucket);
      }
      // Fallback for events no bucket covers: only kAnyEvent can match.
      std::vector<std::uint32_t> any_candidates;
      for (const std::uint32_t j : local) {
        if (m_.transitions[j].trigger == TriggerKind::kAnyEvent) {
          any_candidates.push_back(j);
        }
      }
      m_.any_handler[s] = EmitHandler(any_candidates);
    }
    BuildDenseTable();
  }

  // Flattens the buckets into the O(1) [state][kind][task] table, with
  // every uncovered entry pre-filled with that state's fallback handler.
  void BuildDenseTable() {
    m_.max_task = 0;
    for (const CompiledTransition& t : m_.transitions) {
      if (t.trigger != TriggerKind::kAnyEvent && t.task > m_.max_task) {
        m_.max_task = t.task;
      }
    }
    const std::uint32_t tasks = m_.max_task + 1;
    m_.dispatch.assign(m_.state_names.size() * 2u * tasks, kNoProgram);
    for (std::uint16_t s = 0; s < m_.state_names.size(); ++s) {
      for (std::uint32_t kind = 0; kind < 2; ++kind) {
        for (std::uint32_t task = 0; task < tasks; ++task) {
          m_.dispatch[(s * 2u + kind) * tasks + task] = m_.any_handler[s];
        }
      }
      for (const CompiledMachine::Bucket& b : m_.buckets[s]) {
        const std::uint32_t kind = static_cast<std::uint32_t>(b.kind);
        m_.dispatch[(s * 2u + kind) * tasks + b.task] = b.handler_pc;
      }
    }
  }

  const StateMachine& src_;
  CompiledMachine m_;
  std::map<std::string, std::uint16_t> state_ids_;
  std::map<std::string, std::uint32_t> slot_ids_;
  std::map<double, std::uint32_t> const_ids_;
  int depth_ = 0;
  std::uint32_t empty_handler_ = kNoProgram;
};

}  // namespace

StatusOr<CompiledMachine> CompileStateMachine(const StateMachine& machine) {
  return Compiler(machine).Run();
}

std::string Disassemble(const CompiledMachine& machine) {
  std::ostringstream out;
  out << "compiled " << machine.name << " (" << machine.property_label << ")\n";
  out << "  states: " << machine.state_names.size() << " initial: "
      << machine.state_names[machine.initial] << '\n';
  for (std::size_t i = 0; i < machine.var_names.size(); ++i) {
    out << "  slot " << i << ": " << machine.var_names[i] << " = "
        << machine.initial_slots[i] << '\n';
  }
  for (std::size_t i = 0; i < machine.transitions.size(); ++i) {
    const CompiledTransition& t = machine.transitions[i];
    out << "  t" << i << ": " << machine.state_names[t.from] << " -> "
        << machine.state_names[t.to] << " : " << TriggerKindName(t.trigger);
    if (t.trigger != TriggerKind::kAnyEvent) {
      out << "(task#" << t.task << ")";
    }
    out << '\n';
  }
  for (std::size_t s = 0; s < machine.buckets.size(); ++s) {
    for (const CompiledMachine::Bucket& b : machine.buckets[s]) {
      out << "  " << machine.state_names[s] << " / "
          << (b.kind == EventKind::kStartTask ? "start" : "end") << "(task#" << b.task
          << ") -> handler@" << b.handler_pc << " (" << b.candidates << " candidates)\n";
    }
    out << "  " << machine.state_names[s] << " / * -> handler@" << machine.any_handler[s]
        << '\n';
  }
  for (std::size_t pc = 0; pc < machine.code.size(); ++pc) {
    const Instr& in = machine.code[pc];
    out << "  " << pc << ": " << OpName(in.op);
    switch (in.op) {
      case OpCode::kPushConst:
        out << ' ' << machine.const_pool[in.operand];
        break;
      case OpCode::kPushSlot:
      case OpCode::kStoreSlot:
        out << ' ' << machine.var_names[in.operand];
        break;
      case OpCode::kStoreField:
      case OpCode::kFieldMinusSlot:
      case OpCode::kJumpIfNotElapsedLt:
      case OpCode::kJumpIfNotElapsedLe:
      case OpCode::kJumpIfNotElapsedGt:
      case OpCode::kJumpIfNotElapsedGe:
      case OpCode::kJumpIfNotElapsedEq:
      case OpCode::kJumpIfNotElapsedNe:
      case OpCode::kStoreFieldCommit:
      case OpCode::kGuardCommitElapsedLt:
      case OpCode::kGuardCommitElapsedLe:
      case OpCode::kGuardCommitElapsedGt:
      case OpCode::kGuardCommitElapsedGe:
      case OpCode::kGuardCommitElapsedEq:
      case OpCode::kGuardCommitElapsedNe:
        out << " field:" << (in.operand >> 16) << ' '
            << machine.var_names[in.operand & 0xFFFF];
        break;
      case OpCode::kAddConstSlot:
        out << ' ' << machine.var_names[in.operand & 0xFFFF] << " += "
            << machine.const_pool[in.operand >> 16];
        break;
      case OpCode::kCommit:
        out << ' ' << machine.state_names[in.operand];
        break;
      case OpCode::kPushField:
      case OpCode::kJumpIfZero:
      case OpCode::kJump:
      case OpCode::kJumpIfNotLt:
      case OpCode::kJumpIfNotLe:
      case OpCode::kJumpIfNotGt:
      case OpCode::kJumpIfNotGe:
      case OpCode::kJumpIfNotEq:
      case OpCode::kJumpIfNotNe:
      case OpCode::kJumpIfNotAnd:
      case OpCode::kJumpIfNotOr:
      case OpCode::kExtend:
      case OpCode::kFail:
        out << ' ' << in.operand;
        break;
      default:
        break;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace artemis
