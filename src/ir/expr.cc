#include "src/ir/expr.h"

namespace artemis {
namespace {

const char* BinOpToken(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kEq:
      return "==";
    case BinOp::kNe:
      return "!=";
    case BinOp::kAnd:
      return "&&";
    case BinOp::kOr:
      return "||";
  }
  return "?";
}

const char* FieldName(EventField field) {
  switch (field) {
    case EventField::kTimestamp:
      return "e->timestamp";
    case EventField::kDepData:
      return "e->depData";
    case EventField::kHasDepData:
      return "e->hasDepData";
    case EventField::kEnergyFraction:
      return "e->energy";
    case EventField::kPath:
      return "e->path";
  }
  return "?";
}

std::string NumberToC(double value) {
  // Integral values print without a trailing ".000000".
  if (value == static_cast<double>(static_cast<long long>(value))) {
    return std::to_string(static_cast<long long>(value));
  }
  return std::to_string(value);
}

}  // namespace

ExprPtr Const(double value) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->constant = value;
  return e;
}

ExprPtr Var(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kVar;
  e->var = std::move(name);
  return e;
}

ExprPtr Field(EventField field) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kEventField;
  e->field = field;
  return e;
}

ExprPtr Bin(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Un(UnOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->un = op;
  e->lhs = std::move(operand);
  return e;
}

double EvalExpr(const Expr& expr, const VarEnv& env, const MonitorEvent& event) {
  switch (expr.kind) {
    case ExprKind::kConst:
      return expr.constant;
    case ExprKind::kVar: {
      const auto it = env.find(expr.var);
      return it != env.end() ? it->second : 0.0;
    }
    case ExprKind::kEventField:
      switch (expr.field) {
        case EventField::kTimestamp:
          return static_cast<double>(event.timestamp);
        case EventField::kDepData:
          return event.dep_data;
        case EventField::kHasDepData:
          return event.has_dep_data ? 1.0 : 0.0;
        case EventField::kEnergyFraction:
          return event.energy_fraction;
        case EventField::kPath:
          return static_cast<double>(event.path);
      }
      return 0.0;
    case ExprKind::kBinary: {
      const double l = EvalExpr(*expr.lhs, env, event);
      // Short-circuit logicals.
      if (expr.bin == BinOp::kAnd) {
        return (l != 0.0 && EvalExpr(*expr.rhs, env, event) != 0.0) ? 1.0 : 0.0;
      }
      if (expr.bin == BinOp::kOr) {
        return (l != 0.0 || EvalExpr(*expr.rhs, env, event) != 0.0) ? 1.0 : 0.0;
      }
      const double r = EvalExpr(*expr.rhs, env, event);
      switch (expr.bin) {
        case BinOp::kAdd:
          return l + r;
        case BinOp::kSub:
          return l - r;
        case BinOp::kMul:
          return l * r;
        case BinOp::kDiv:
          return r != 0.0 ? l / r : 0.0;
        case BinOp::kLt:
          return l < r ? 1.0 : 0.0;
        case BinOp::kLe:
          return l <= r ? 1.0 : 0.0;
        case BinOp::kGt:
          return l > r ? 1.0 : 0.0;
        case BinOp::kGe:
          return l >= r ? 1.0 : 0.0;
        case BinOp::kEq:
          return l == r ? 1.0 : 0.0;
        case BinOp::kNe:
          return l != r ? 1.0 : 0.0;
        case BinOp::kAnd:
        case BinOp::kOr:
          break;
      }
      return 0.0;
    }
    case ExprKind::kUnary: {
      const double v = EvalExpr(*expr.lhs, env, event);
      return expr.un == UnOp::kNot ? (v == 0.0 ? 1.0 : 0.0) : -v;
    }
  }
  return 0.0;
}

std::string ExprToC(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kConst:
      return NumberToC(expr.constant);
    case ExprKind::kVar:
      return "m->" + expr.var;
    case ExprKind::kEventField:
      return FieldName(expr.field);
    case ExprKind::kBinary:
      return "(" + ExprToC(*expr.lhs) + " " + BinOpToken(expr.bin) + " " + ExprToC(*expr.rhs) +
             ")";
    case ExprKind::kUnary:
      return expr.un == UnOp::kNot ? "!(" + ExprToC(*expr.lhs) + ")"
                                   : "-(" + ExprToC(*expr.lhs) + ")";
  }
  return "?";
}

StmtPtr Assign(std::string var, ExprPtr value) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kAssign;
  s->var = std::move(var);
  s->value = std::move(value);
  return s;
}

StmtPtr If(ExprPtr cond, std::vector<StmtPtr> then_body, std::vector<StmtPtr> else_body) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kIf;
  s->cond = std::move(cond);
  s->then_body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr Fail(ActionType action, PathId target_path, std::string property) {
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kFail;
  s->action = action;
  s->target_path = target_path;
  s->property = std::move(property);
  return s;
}

bool ExecStmts(const std::vector<StmtPtr>& body, VarEnv* env, const MonitorEvent& event,
               MonitorVerdict* verdict) {
  bool failed = false;
  for (const StmtPtr& stmt : body) {
    switch (stmt->kind) {
      case StmtKind::kAssign:
        (*env)[stmt->var] = EvalExpr(*stmt->value, *env, event);
        break;
      case StmtKind::kIf:
        if (EvalExpr(*stmt->cond, *env, event) != 0.0) {
          failed = ExecStmts(stmt->then_body, env, event, verdict) || failed;
        } else {
          failed = ExecStmts(stmt->else_body, env, event, verdict) || failed;
        }
        break;
      case StmtKind::kFail:
        verdict->action = stmt->action;
        verdict->target_path = stmt->target_path;
        verdict->property = stmt->property;
        failed = true;
        break;
    }
  }
  return failed;
}

void CollectVars(const Expr& expr, std::map<std::string, int>* vars) {
  switch (expr.kind) {
    case ExprKind::kVar:
      ++(*vars)[expr.var];
      break;
    case ExprKind::kBinary:
      CollectVars(*expr.lhs, vars);
      CollectVars(*expr.rhs, vars);
      break;
    case ExprKind::kUnary:
      CollectVars(*expr.lhs, vars);
      break;
    case ExprKind::kConst:
    case ExprKind::kEventField:
      break;
  }
}

void CollectVars(const std::vector<StmtPtr>& body, std::map<std::string, int>* vars) {
  for (const StmtPtr& stmt : body) {
    switch (stmt->kind) {
      case StmtKind::kAssign:
        ++(*vars)[stmt->var];
        CollectVars(*stmt->value, vars);
        break;
      case StmtKind::kIf:
        CollectVars(*stmt->cond, vars);
        CollectVars(stmt->then_body, vars);
        CollectVars(stmt->else_body, vars);
        break;
      case StmtKind::kFail:
        break;
    }
  }
}

}  // namespace artemis
