// Model-to-model transformation: validated property specifications to
// intermediate-language state machines, following the Figure 7 templates.
//
// Template summary (A = the block's task, B = dpTask, ts = event timestamp):
//
//  maxTries N:      NotStarted --start(A)/i=1--> Started
//                   Started --start(A)[i<N]/i=i+1--> Started
//                   Started --start(A)[i>=N]/fail;i=0--> NotStarted
//                   Started --end(A)/i=0--> NotStarted
//
//  maxDuration D:   NotStarted --start(A)/start=ts--> Started
//                   Started --end(A)[ts-start<=D]--> NotStarted
//                   Started --anyEvent[ts-start>D]/fail--> NotStarted
//
//  collect N of B:  S0 --end(B)/i=i+1--> S0
//                   S0 --start(A)[i>=N]/i=0--> S0
//                   S0 --start(A)[i<N]/fail(;i=0 when reset_on_fail)--> S0
//      NOTE: Figure 7 resets the counter on failure, but Section 5.1's
//      benchmark ("restarts the first path until enough samples are
//      collected") requires accumulation; accumulate is the default and
//      reset_on_fail restores the literal figure.
//
//  MITD D from B,   WaitEndB --end(B)/endB=ts--> WaitStartA
//  maxAttempt M:    WaitStartA --end(B)/endB=ts--> WaitStartA   (refresh; our
//                       documented addition so foreign path restarts cannot
//                       leave a stale endB)
//                   WaitStartA --start(A)[ts-endB<=D]/att=0--> WaitEndB
//                   WaitStartA --start(A)[viol && att<M-1]/att++;fail1--> WaitEndB
//                   WaitStartA --start(A)[viol && att>=M-1]/att=0;fail2--> WaitEndB
//
//  period P (±J):   S0 --start(A)[started==0]/last=ts;started=1--> S0
//                   S0 --start(A)[started==1 && ts-last<=P+J]/last=ts--> S0
//                   S0 --start(A)[started==1 && ts-last>P+J]/fail;last=ts--> S0
//
//  dpData [lo,hi]:  S0 --end(A)[hasData && (v<lo || v>hi)]/fail--> S0
//
//  minEnergy F:     S0 --start(A)[energy<F]/fail--> S0   (Section 4.2.2)
#ifndef SRC_IR_LOWERING_H_
#define SRC_IR_LOWERING_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/state_machine.h"
#include "src/kernel/app_graph.h"
#include "src/spec/ast.h"

namespace artemis {

struct LoweringOptions {
  // Literal Figure 7 collect semantics (reset the counter when signalling
  // failure) instead of the accumulate default.
  bool collect_reset_on_fail = false;
};

// Lowers one property. The spec must already be validated; unresolvable
// names are internal errors here.
StatusOr<StateMachine> LowerProperty(const PropertyAst& property, const std::string& task_name,
                                     const AppGraph& graph, const LoweringOptions& options = {});

// Lowers a whole specification: one machine per property, in declaration
// order.
StatusOr<std::vector<StateMachine>> LowerSpec(const SpecAst& spec, const AppGraph& graph,
                                              const LoweringOptions& options = {});

}  // namespace artemis

#endif  // SRC_IR_LOWERING_H_
