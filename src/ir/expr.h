// Expression and statement mini-IR used inside intermediate-language state
// machines (Section 3.3): guards are boolean expressions over machine
// variables and event fields; transition bodies contain assignments,
// if-then-else, and failure signals.
#ifndef SRC_IR_EXPR_H_
#define SRC_IR_EXPR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/checker.h"

namespace artemis {

enum class ExprKind : std::uint8_t { kConst, kVar, kEventField, kBinary, kUnary };

// Fields of the MonitorEvent observable from guards/bodies. `ts` in
// Figure 7 is kTimestamp.
enum class EventField : std::uint8_t {
  kTimestamp,
  kDepData,
  kHasDepData,
  kEnergyFraction,
  kPath,
};

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kLt, kLe, kGt, kGe, kEq, kNe, kAnd, kOr,
};

enum class UnOp : std::uint8_t { kNot, kNeg };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  ExprKind kind = ExprKind::kConst;
  double constant = 0.0;        // kConst
  std::string var;              // kVar
  EventField field = EventField::kTimestamp;  // kEventField
  BinOp bin = BinOp::kAdd;      // kBinary
  UnOp un = UnOp::kNot;         // kUnary
  ExprPtr lhs, rhs;             // children
};

// Builders.
ExprPtr Const(double value);
ExprPtr Var(std::string name);
ExprPtr Field(EventField field);
ExprPtr Bin(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Un(UnOp op, ExprPtr operand);

// All numeric state lives in doubles; booleans are 0.0 / 1.0. Timestamps in
// microsecond ticks stay exact below 2^53 us (~285 simulated years).
using VarEnv = std::map<std::string, double>;

// Evaluates `expr` against machine variables and the current event.
// Unknown variables read as 0 (machines are validated before execution).
double EvalExpr(const Expr& expr, const VarEnv& env, const MonitorEvent& event);

// Renders the expression in C syntax (shared by the C code generator, the
// DOT generator, and debug output).
std::string ExprToC(const Expr& expr);

// ---- statements --------------------------------------------------------

enum class StmtKind : std::uint8_t { kAssign, kIf, kFail };

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

struct Stmt {
  StmtKind kind = StmtKind::kAssign;
  // kAssign
  std::string var;
  ExprPtr value;
  // kIf
  ExprPtr cond;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;
  // kFail
  ActionType action = ActionType::kNone;
  PathId target_path = kNoPath;
  std::string property;  // label reported with the violation
};

StmtPtr Assign(std::string var, ExprPtr value);
StmtPtr If(ExprPtr cond, std::vector<StmtPtr> then_body, std::vector<StmtPtr> else_body = {});
StmtPtr Fail(ActionType action, PathId target_path, std::string property);

// Statement execution: mutates `env`; if a kFail runs, fills `verdict`
// (last failure wins within one body) and returns true.
bool ExecStmts(const std::vector<StmtPtr>& body, VarEnv* env, const MonitorEvent& event,
               MonitorVerdict* verdict);

// Free variables referenced by an expression / statement list (for
// validation).
void CollectVars(const Expr& expr, std::map<std::string, int>* vars);
void CollectVars(const std::vector<StmtPtr>& body, std::map<std::string, int>* vars);

}  // namespace artemis

#endif  // SRC_IR_EXPR_H_
