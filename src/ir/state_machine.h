// The ARTEMIS intermediate language: properties as finite-state machines
// (Section 3.3, Figure 7). Machines are data: they can be interpreted by the
// monitor engine (src/monitor/interp) or translated to C text
// (src/ir/codegen_c), mirroring the paper's model-to-text pipeline.
#ifndef SRC_IR_STATE_MACHINE_H_
#define SRC_IR_STATE_MACHINE_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/base/source_span.h"
#include "src/base/status.h"
#include "src/ir/expr.h"
#include "src/kernel/task.h"

namespace artemis {

enum class TriggerKind : std::uint8_t { kStartTask, kEndTask, kAnyEvent };

const char* TriggerKindName(TriggerKind kind);

// Declared width/shape of a persistent monitor slot, used by the hot-swap
// migration planner (src/swap) to reject carrying a value across a type
// change (ART015). Widths follow what codegen_c emits for each role.
enum class SlotType : std::uint8_t {
  kFlag,     // 0/1 marker (e.g. period's "started"), 1 byte on device
  kCounter,  // small monotonic count (maxTries "i", MITD "att"), 4 bytes
  kTime,     // absolute timestamp in sim ticks ("start", "endB"), 8 bytes
};

const char* SlotTypeName(SlotType type);
std::size_t SlotTypeWidth(SlotType type);

struct Transition {
  std::string from;
  std::string to;
  TriggerKind trigger = TriggerKind::kAnyEvent;
  // Task filter for start/end triggers; ignored for kAnyEvent.
  TaskId task = kInvalidTask;
  // Optional guard; null means always enabled.
  ExprPtr guard;
  // Body statements executed when the transition fires.
  std::vector<StmtPtr> body;
};

struct StateMachine {
  std::string name;            // e.g. "mitd_send_accel"
  std::string property_label;  // e.g. "MITD(send<-accel)" for diagnostics
  std::vector<std::string> states;
  std::string initial;
  VarEnv variables;  // name -> initial value
  // name -> declared slot type; variables absent from the map default to
  // kCounter (the conservative legacy width for hand-built machines).
  std::map<std::string, SlotType> slot_types;
  std::vector<Transition> transitions;

  // Position of the originating property in the spec source (0/0 for
  // hand-built machines), so IR-level diagnostics point at the spec text.
  SourceSpan source;

  // The task the property is attached to (the block's task in Figure 5).
  TaskId anchor_task = kInvalidTask;
  // When nonzero, only events from this path are delivered to the machine
  // (path merging, "Path: 2").
  PathId path_scope = kNoPath;
  // Whether a path restart returns the machine to its initial state
  // (in-flight machines like maxDuration) or keeps its counters (collect,
  // maxTries).
  bool reset_on_path_restart = false;

  // Events that do not match any transition are accepted with no state
  // change (implicit self-transition, Section 3.3) — always true in this IR;
  // kept as documentation.

  bool HasState(const std::string& state) const;

  // Structural checks: initial/from/to states exist, transition guards and
  // bodies only reference declared variables, at most one kFail per body
  // path, start/end triggers carry a task.
  Status Validate() const;

  // Multi-line textual dump for debugging and golden tests.
  std::string ToString() const;
};

}  // namespace artemis

#endif  // SRC_IR_STATE_MACHINE_H_
