// Model-to-bytecode compilation: flattens an intermediate-language state
// machine (src/ir/state_machine.h) into a contiguous, slot-indexed form the
// CompiledMonitor backend executes without any string comparison, map
// lookup, or pointer chasing per event:
//
//  * state names are interned to dense uint16_t ids;
//  * machine variables are interned to slot indices, so the execution
//    environment is a flat std::vector<double> instead of a VarEnv map;
//  * every guard Expr and body Stmt tree is flattened into one shared
//    postfix bytecode array (`code`) with precomputed slot / event-field /
//    constant-pool operands;
//  * a per-(state, trigger-kind, task) dispatch index lets Step jump
//    straight to candidate transitions instead of scanning the whole
//    transition list.
//
// The compiled form is semantically identical to the interpreter (the
// differential fuzz test in tests/compiled_monitor_test.cc enforces this);
// see docs/monitor-backends.md for the layout and measured speedups.
#ifndef SRC_IR_COMPILE_H_
#define SRC_IR_COMPILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/state_machine.h"

namespace artemis {

// One postfix bytecode operation. Arithmetic/comparison/logical ops pop two
// values and push one; kNot/kNeg pop one and push one. kAnd/kOr are
// non-short-circuit: expression evaluation is side-effect free, so eager
// evaluation of both operands is observationally identical to the
// interpreter's short-circuit (and branch-free, which is faster here).
//
// Two families of superinstructions are peephole-fused at compile time:
//  * kJumpIfNot* — a comparison (or and/or) immediately feeding a
//    conditional jump, the dominant guard shape: one dispatch pops both
//    operands and branches directly instead of materializing a 0.0/1.0
//    and re-testing it;
//  * kStoreField / kFieldMinusSlot / kAddConstSlot — the recurring lowered
//    idioms `slot = event.field`, `event.field - slot` (elapsed-time
//    guards) and `slot = slot + const` (counter bumps), each collapsed to
//    one dispatch with both indices packed into the operand
//    (high 16 bits: field or const-pool index; low 16 bits: slot).
enum class OpCode : std::uint8_t {
  kPushConst,       // operand: index into const_pool
  kPushSlot,        // operand: variable slot
  kPushField,       // operand: EventField
  kAdd,
  kSub,
  kMul,
  kDiv,  // x/0 == 0.0, matching EvalExpr
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
  kNot,
  kNeg,
  kStoreSlot,       // operand: variable slot; pops one value
  kStoreField,      // fused `slot = event.field`; operand: field<<16 | slot
  kFieldMinusSlot,  // fused push of `event.field - slot`; same packing
  kAddConstSlot,    // fused `slot += const_pool[i]`; operand: i<<16 | slot
  kJumpIfZero,      // operand: absolute pc in `code`; pops one value
  kJump,            // operand: absolute pc in `code`
  kJumpIfNotLt,     // fused compare+branch: pop b, a; jump unless a < b
  kJumpIfNotLe,
  kJumpIfNotGt,
  kJumpIfNotGe,
  kJumpIfNotEq,
  kJumpIfNotNe,
  kJumpIfNotAnd,    // pop b, a; jump unless (a != 0 && b != 0)
  kJumpIfNotOr,     // pop b, a; jump unless (a != 0 || b != 0)
  // Whole-guard fusion of `event.field - var <cmp> const` — the canonical
  // time-window guard (MITD / MSS / maxDuration) — into one dispatch.
  // Three words: [op, field<<16|slot] [kExtend, const-pool index]
  // [kExtend, jump target]; stack untouched.
  kJumpIfNotElapsedLt,
  kJumpIfNotElapsedLe,
  kJumpIfNotElapsedGt,
  kJumpIfNotElapsedGe,
  kJumpIfNotElapsedEq,
  kJumpIfNotElapsedNe,
  // Whole-transition fusions: the two commonest handler shapes collapse to
  // a single dispatch per event.
  //  * kStoreFieldCommit — `slot = event.field` body + commit. Two words:
  //    [op, field<<16|slot] [kExtend, destination state].
  //  * kGuardCommitElapsed* — elapsed guard with an empty body: jump away
  //    on guard failure, else commit. Four words: [op, field<<16|slot]
  //    [kExtend, const-pool index] [kExtend, jump target]
  //    [kExtend, destination state]. Same order as kJumpIfNotElapsed*.
  kStoreFieldCommit,
  kGuardCommitElapsedLt,
  kGuardCommitElapsedLe,
  kGuardCommitElapsedGt,
  kGuardCommitElapsedGe,
  kGuardCommitElapsedEq,
  kGuardCommitElapsedNe,
  kExtend,          // operand word of a multi-word instruction; never dispatched
  kFail,            // operand: index into fail_pool
  kCommit,          // operand: destination state id; commit + return handled
  kNoMatch,         // end of a handler: nothing fired, implicit self-loop
};

struct Instr {
  OpCode op = OpCode::kNoMatch;
  std::uint32_t operand = 0;
};

// Verdict payload of one lowered kFail statement.
struct FailRecord {
  ActionType action = ActionType::kNone;
  PathId target_path = kNoPath;
  std::string property;
};

// Sentinel program counter: "no guard" / "empty body".
inline constexpr std::uint32_t kNoProgram = 0xFFFFFFFFu;

// Metadata about one source transition, kept for introspection and
// disassembly; the executable form lives in the fused handler programs.
struct CompiledTransition {
  std::uint16_t from = 0;
  std::uint16_t to = 0;
  TriggerKind trigger = TriggerKind::kAnyEvent;
  TaskId task = kInvalidTask;
};

struct CompiledMachine {
  std::string name;
  std::string property_label;

  // State interning: id == index into state_names; `initial` is an id.
  std::vector<std::string> state_names;
  std::uint16_t initial = 0;

  // Variable interning: slot == index into var_names / initial_slots.
  std::vector<std::string> var_names;
  std::vector<double> initial_slots;
  // Declared type per slot, index-aligned with var_names; the hot-swap
  // migration planner (src/swap) refuses to carry a value across slots of
  // different types (ART015).
  std::vector<SlotType> slot_types;

  // All handler programs, concatenated. Each bucket points at one program
  // that inlines every candidate transition in declaration order:
  //   <guard>  kJumpIfZero next; <body>  kSetState to; kHandled
  // and ends with kNoMatch if no candidate fired (implicit self-loop).
  std::vector<Instr> code;
  std::vector<double> const_pool;
  std::vector<FailRecord> fail_pool;
  // Max operand-stack depth over all programs (for one-time allocation).
  std::uint32_t max_stack = 0;

  std::vector<CompiledTransition> transitions;

  // ---- dispatch index -------------------------------------------------
  // For each state, transitions are bucketed by the exact (event kind,
  // task id) pairs that can match them. A bucket's handler program inlines
  // its candidate transitions in declaration order (interleaving kAnyEvent
  // transitions), so running a handler is equivalent to scanning the whole
  // transition list. Events whose (kind, task) has no dedicated bucket can
  // only match kAnyEvent transitions and fall back to `any_handler`.
  struct Bucket {
    EventKind kind = EventKind::kStartTask;
    TaskId task = kInvalidTask;
    std::uint32_t handler_pc = kNoProgram;
    std::uint32_t candidates = 0;  // transitions inlined (introspection)
  };
  std::vector<std::vector<Bucket>> buckets;  // indexed by state id
  std::vector<std::uint32_t> any_handler;    // indexed by state id; a pc

  // Dense O(1) dispatch: handler pc for every (state, kind, task) with
  // task <= max_task, any_handler defaults pre-filled. Laid out
  // [state][kind][task] so one multiply-add reaches the entry.
  std::uint32_t max_task = 0;
  std::vector<std::uint32_t> dispatch;

  // Runtime policy knobs carried over from the StateMachine.
  TaskId anchor_task = kInvalidTask;
  PathId path_scope = kNoPath;
  bool reset_on_path_restart = false;

  // Entry pc of the handler program for (state, event kind, task).
  inline std::uint32_t HandlerFor(std::uint16_t state, EventKind kind, TaskId task) const {
    const auto t = static_cast<std::uint32_t>(task);
    if (t > max_task) {
      return any_handler[state];
    }
    const std::uint32_t row =
        (static_cast<std::uint32_t>(state) * 2u + static_cast<std::uint32_t>(kind));
    return dispatch[row * (max_task + 1u) + t];
  }
};

// Validates and compiles `machine`. Fails on machines that exceed the
// bytecode's index ranges (65k states/slots, 4G instructions) or that fail
// StateMachine::Validate().
StatusOr<CompiledMachine> CompileStateMachine(const StateMachine& machine);

// Human-readable disassembly for debugging and golden tests.
std::string Disassemble(const CompiledMachine& machine);

}  // namespace artemis

#endif  // SRC_IR_COMPILE_H_
