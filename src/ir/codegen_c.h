// Model-to-text transformation: intermediate-language state machines to
// power-failure-resilient C monitor code (Section 4.2).
//
// The emitted code matches the structure of Figure 10: one FRAM-resident
// state struct per machine, one step function per machine wrapped in
// ImmortalThreads _begin/_end macros, and a top-level callMonitor that feeds
// the event to every machine and folds the returned actions.
//
// The output targets the paper's MSP430 toolchain conventions (the __fram
// attribute, immortal.h macros); within this repository it is exercised by
// golden tests and the codegen_demo example rather than cross-compiled.
#ifndef SRC_IR_CODEGEN_C_H_
#define SRC_IR_CODEGEN_C_H_

#include <string>
#include <vector>

#include "src/ir/state_machine.h"
#include "src/kernel/app_graph.h"

namespace artemis {

struct CodegenOptions {
  // Emitted header guard / file banner name.
  std::string unit_name = "artemis_monitors";
  // Emit the ImmortalThreads _begin/_end checkpoint macros around each step
  // function (Section 4.2.3). Off produces plain C for unit inspection.
  bool immortal_macros = true;
};

class CCodeGenerator {
 public:
  explicit CCodeGenerator(CodegenOptions options = {}) : options_(std::move(options)) {}

  // Full compilation unit: prologue, per-machine structs + step functions,
  // and the aggregated callMonitor entry point.
  std::string Generate(const std::vector<StateMachine>& machines, const AppGraph& graph) const;

  // Just one machine's struct + step function (used by tests).
  std::string GenerateMachine(const StateMachine& machine, const AppGraph& graph) const;

  // Estimated MSP430 .text bytes for the generated monitors, using the
  // documented per-construct proxy costs (see sim/cost_model.h and the
  // Table 2 caveat in DESIGN.md).
  static std::size_t EstimateTextBytes(const std::vector<StateMachine>& machines);

 private:
  CodegenOptions options_;
};

}  // namespace artemis

#endif  // SRC_IR_CODEGEN_C_H_
