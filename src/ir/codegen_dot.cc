#include "src/ir/codegen_dot.h"

#include <sstream>

namespace artemis {
namespace {

std::string EscapeLabel(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

std::string TransitionLabel(const Transition& t, const AppGraph& graph) {
  std::ostringstream label;
  if (t.guard != nullptr) {
    label << "[" << ExprToC(*t.guard) << "] ";
  }
  label << TriggerKindName(t.trigger);
  if (t.trigger != TriggerKind::kAnyEvent) {
    label << "(" << graph.TaskName(t.task) << ")";
  }
  std::size_t fails = 0;
  std::size_t assigns = 0;
  for (const StmtPtr& s : t.body) {
    fails += s->kind == StmtKind::kFail ? 1 : 0;
    assigns += s->kind == StmtKind::kAssign ? 1 : 0;
  }
  if (assigns != 0 || fails != 0) {
    label << " /";
    for (const StmtPtr& s : t.body) {
      if (s->kind == StmtKind::kAssign) {
        label << " " << s->var << "=" << ExprToC(*s->value) << ";";
      } else if (s->kind == StmtKind::kFail) {
        label << " fail(" << ActionTypeName(s->action) << ");";
      }
    }
  }
  return label.str();
}

void EmitMachineBody(std::ostringstream& out, const StateMachine& m, const AppGraph& graph,
                     const std::string& prefix, const DotStyle* style) {
  for (const std::string& state : m.states) {
    out << "  " << prefix << state << " [label=\"" << EscapeLabel(state) << "\""
        << (state == m.initial ? ", peripheries=2" : "");
    if (style != nullptr && style->dead_states.count(state) != 0) {
      out << ", style=filled, fillcolor=\"gray88\", color=\"gray55\", fontcolor=\"gray45\"";
    }
    out << "];\n";
  }
  for (std::size_t i = 0; i < m.transitions.size(); ++i) {
    const Transition& t = m.transitions[i];
    out << "  " << prefix << t.from << " -> " << prefix << t.to << " [label=\""
        << EscapeLabel(TransitionLabel(t, graph)) << "\"";
    if (style != nullptr && style->dead_transitions.count(static_cast<int>(i)) != 0) {
      out << ", color=\"gray60\", fontcolor=\"gray60\", style=dashed";
    }
    out << "];\n";
  }
}

}  // namespace

std::string MachineToDot(const StateMachine& machine, const AppGraph& graph,
                         const DotStyle* style) {
  std::ostringstream out;
  out << "digraph " << machine.name << " {\n  rankdir=LR;\n  label=\""
      << EscapeLabel(machine.property_label) << "\";\n";
  EmitMachineBody(out, machine, graph, "", style);
  out << "}\n";
  return out.str();
}

std::string MachinesToDot(const std::vector<StateMachine>& machines, const AppGraph& graph,
                          const DotAnnotations* annotations) {
  std::ostringstream out;
  out << "digraph monitors {\n  rankdir=LR;\n  compound=true;\n";
  for (std::size_t i = 0; i < machines.size(); ++i) {
    const StateMachine& m = machines[i];
    const DotStyle* style = nullptr;
    if (annotations != nullptr) {
      const auto it = annotations->find(m.name);
      if (it != annotations->end()) style = &it->second;
    }
    out << "  subgraph cluster_" << i << " {\n    label=\"" << EscapeLabel(m.property_label)
        << "\";\n";
    EmitMachineBody(out, m, graph, m.name + "_", style);
    out << "  }\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace artemis
