#include "src/ir/lowering.h"

#include <algorithm>
#include <cctype>

namespace artemis {
namespace {

constexpr char kS0[] = "S0";
constexpr char kNotStarted[] = "NotStarted";
constexpr char kStarted[] = "Started";
constexpr char kWaitEndB[] = "WaitEndB";
constexpr char kWaitStartA[] = "WaitStartA";

ExprPtr Ts() { return Field(EventField::kTimestamp); }

std::string Sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

StateMachine LowerMaxTries(const PropertyAst& p, const std::string& label, TaskId a) {
  StateMachine m;
  m.states = {kNotStarted, kStarted};
  m.initial = kNotStarted;
  m.variables["i"] = 0.0;
  m.slot_types["i"] = SlotType::kCounter;
  const double n = static_cast<double>(p.count);

  m.transitions.push_back(Transition{.from = kNotStarted,
                                     .to = kStarted,
                                     .trigger = TriggerKind::kStartTask,
                                     .task = a,
                                     .guard = nullptr,
                                     .body = {Assign("i", Const(1.0))}});
  m.transitions.push_back(Transition{.from = kStarted,
                                     .to = kStarted,
                                     .trigger = TriggerKind::kStartTask,
                                     .task = a,
                                     .guard = Bin(BinOp::kLt, Var("i"), Const(n)),
                                     .body = {Assign("i", Bin(BinOp::kAdd, Var("i"), Const(1.0)))}});
  m.transitions.push_back(Transition{.from = kStarted,
                                     .to = kNotStarted,
                                     .trigger = TriggerKind::kStartTask,
                                     .task = a,
                                     .guard = Bin(BinOp::kGe, Var("i"), Const(n)),
                                     .body = {Fail(p.on_fail, p.path, label),
                                              Assign("i", Const(0.0))}});
  m.transitions.push_back(Transition{.from = kStarted,
                                     .to = kNotStarted,
                                     .trigger = TriggerKind::kEndTask,
                                     .task = a,
                                     .guard = nullptr,
                                     .body = {Assign("i", Const(0.0))}});
  return m;
}

StateMachine LowerMaxDuration(const PropertyAst& p, const std::string& label, TaskId a) {
  StateMachine m;
  m.states = {kNotStarted, kStarted};
  m.initial = kNotStarted;
  m.variables["start"] = 0.0;
  m.slot_types["start"] = SlotType::kTime;
  const double d = static_cast<double>(p.duration);
  const ExprPtr elapsed = Bin(BinOp::kSub, Ts(), Var("start"));

  m.transitions.push_back(Transition{.from = kNotStarted,
                                     .to = kStarted,
                                     .trigger = TriggerKind::kStartTask,
                                     .task = a,
                                     .guard = nullptr,
                                     .body = {Assign("start", Ts())}});
  m.transitions.push_back(Transition{.from = kStarted,
                                     .to = kNotStarted,
                                     .trigger = TriggerKind::kEndTask,
                                     .task = a,
                                     .guard = Bin(BinOp::kLe, elapsed, Const(d)),
                                     .body = {}});
  m.transitions.push_back(Transition{.from = kStarted,
                                     .to = kNotStarted,
                                     .trigger = TriggerKind::kAnyEvent,
                                     .task = kInvalidTask,
                                     .guard = Bin(BinOp::kGt, elapsed, Const(d)),
                                     .body = {Fail(p.on_fail, p.path, label)}});
  // An in-time re-delivered start is an implicit self-transition: the
  // machine retains the first start timestamp (Section 4.1.3).
  m.reset_on_path_restart = true;
  return m;
}

StateMachine LowerCollect(const PropertyAst& p, const std::string& label, TaskId a, TaskId b,
                          bool reset_on_fail) {
  StateMachine m;
  m.states = {kS0};
  m.initial = kS0;
  m.variables["i"] = 0.0;
  m.slot_types["i"] = SlotType::kCounter;
  const double n = static_cast<double>(p.count);

  m.transitions.push_back(Transition{.from = kS0,
                                     .to = kS0,
                                     .trigger = TriggerKind::kEndTask,
                                     .task = b,
                                     .guard = nullptr,
                                     .body = {Assign("i", Bin(BinOp::kAdd, Var("i"), Const(1.0)))}});
  // A start with enough samples passes without touching the counter, so a
  // power-failure re-execution of A still passes; the samples are consumed
  // when A *commits* (end(A) resets the counter).
  std::vector<StmtPtr> fail_body = {Fail(p.on_fail, p.path, label)};
  if (reset_on_fail) {
    fail_body.push_back(Assign("i", Const(0.0)));
  }
  m.transitions.push_back(Transition{.from = kS0,
                                     .to = kS0,
                                     .trigger = TriggerKind::kStartTask,
                                     .task = a,
                                     .guard = Bin(BinOp::kLt, Var("i"), Const(n)),
                                     .body = std::move(fail_body)});
  m.transitions.push_back(Transition{.from = kS0,
                                     .to = kS0,
                                     .trigger = TriggerKind::kEndTask,
                                     .task = a,
                                     .guard = nullptr,
                                     .body = {Assign("i", Const(0.0))}});
  return m;
}

StateMachine LowerMitd(const PropertyAst& p, const std::string& label, TaskId a, TaskId b) {
  StateMachine m;
  m.states = {kWaitEndB, kWaitStartA};
  m.initial = kWaitEndB;
  m.variables["endB"] = 0.0;
  m.slot_types["endB"] = SlotType::kTime;
  // The attempt counter only exists when maxAttempt is in play; otherwise
  // it would be write-only state (8 wasted FRAM bytes per instance, flagged
  // by the ART006 liveness pass).
  if (p.max_attempt > 0) {
    m.variables["att"] = 0.0;
    m.slot_types["att"] = SlotType::kCounter;
  }
  const double d = static_cast<double>(p.duration);
  const ExprPtr delay = Bin(BinOp::kSub, Ts(), Var("endB"));
  const ExprPtr in_time = Bin(BinOp::kLe, delay, Const(d));
  const ExprPtr late = Bin(BinOp::kGt, delay, Const(d));

  m.transitions.push_back(Transition{.from = kWaitEndB,
                                     .to = kWaitStartA,
                                     .trigger = TriggerKind::kEndTask,
                                     .task = b,
                                     .guard = nullptr,
                                     .body = {Assign("endB", Ts())}});
  // Refresh on a repeated completion of B (documented addition; see header).
  m.transitions.push_back(Transition{.from = kWaitStartA,
                                     .to = kWaitStartA,
                                     .trigger = TriggerKind::kEndTask,
                                     .task = b,
                                     .guard = nullptr,
                                     .body = {Assign("endB", Ts())}});
  // An in-time start passes but does NOT reset the attempt counter: the
  // attempt only really succeeded once A commits. Otherwise the pre-failure
  // start of each retry cycle would clear the counter and maxAttempt could
  // never fire (the exact scenario it exists for).
  m.transitions.push_back(Transition{.from = kWaitStartA,
                                     .to = kWaitStartA,
                                     .trigger = TriggerKind::kStartTask,
                                     .task = a,
                                     .guard = in_time,
                                     .body = {}});
  std::vector<StmtPtr> commit_body;
  if (p.max_attempt > 0) {
    commit_body.push_back(Assign("att", Const(0.0)));
  }
  m.transitions.push_back(Transition{.from = kWaitStartA,
                                     .to = kWaitStartA,
                                     .trigger = TriggerKind::kEndTask,
                                     .task = a,
                                     .guard = nullptr,
                                     .body = std::move(commit_body)});
  if (p.max_attempt > 0) {
    const double m_1 = static_cast<double>(p.max_attempt) - 1.0;
    m.transitions.push_back(Transition{
        .from = kWaitStartA,
        .to = kWaitStartA,
        .trigger = TriggerKind::kStartTask,
        .task = a,
        .guard = Bin(BinOp::kAnd, late, Bin(BinOp::kLt, Var("att"), Const(m_1))),
        .body = {Assign("att", Bin(BinOp::kAdd, Var("att"), Const(1.0))),
                 Fail(p.on_fail, p.path, label)}});
    m.transitions.push_back(Transition{
        .from = kWaitStartA,
        .to = kWaitStartA,
        .trigger = TriggerKind::kStartTask,
        .task = a,
        .guard = Bin(BinOp::kAnd, late, Bin(BinOp::kGe, Var("att"), Const(m_1))),
        .body = {Assign("att", Const(0.0)),
                 Fail(p.max_attempt_action, p.path, label + "/maxAttempt")}});
  } else {
    m.transitions.push_back(Transition{.from = kWaitStartA,
                                       .to = kWaitStartA,
                                       .trigger = TriggerKind::kStartTask,
                                       .task = a,
                                       .guard = late,
                                       .body = {Fail(p.on_fail, p.path, label)}});
  }
  return m;
}

StateMachine LowerPeriod(const PropertyAst& p, const std::string& label, TaskId a) {
  StateMachine m;
  m.states = {kS0};
  m.initial = kS0;
  m.variables["last"] = 0.0;
  m.slot_types["last"] = SlotType::kTime;
  m.variables["started"] = 0.0;
  m.slot_types["started"] = SlotType::kFlag;
  const double bound = static_cast<double>(p.duration + p.jitter);
  const ExprPtr gap = Bin(BinOp::kSub, Ts(), Var("last"));
  const ExprPtr fresh = Bin(BinOp::kEq, Var("started"), Const(0.0));
  const ExprPtr running = Bin(BinOp::kEq, Var("started"), Const(1.0));

  m.transitions.push_back(Transition{
      .from = kS0,
      .to = kS0,
      .trigger = TriggerKind::kStartTask,
      .task = a,
      .guard = fresh,
      .body = {Assign("last", Ts()), Assign("started", Const(1.0))}});
  m.transitions.push_back(Transition{
      .from = kS0,
      .to = kS0,
      .trigger = TriggerKind::kStartTask,
      .task = a,
      .guard = Bin(BinOp::kAnd, running, Bin(BinOp::kLe, gap, Const(bound))),
      .body = {Assign("last", Ts())}});
  m.transitions.push_back(Transition{
      .from = kS0,
      .to = kS0,
      .trigger = TriggerKind::kStartTask,
      .task = a,
      .guard = Bin(BinOp::kAnd, running, Bin(BinOp::kGt, gap, Const(bound))),
      .body = {Fail(p.on_fail, p.path, label), Assign("last", Ts())}});
  return m;
}

StateMachine LowerDpData(const PropertyAst& p, const std::string& label, TaskId a) {
  StateMachine m;
  m.states = {kS0};
  m.initial = kS0;
  const ExprPtr out_of_range =
      Bin(BinOp::kOr, Bin(BinOp::kLt, Field(EventField::kDepData), Const(p.range_lo)),
          Bin(BinOp::kGt, Field(EventField::kDepData), Const(p.range_hi)));
  m.transitions.push_back(Transition{
      .from = kS0,
      .to = kS0,
      .trigger = TriggerKind::kEndTask,
      .task = a,
      .guard = Bin(BinOp::kAnd,
                   Bin(BinOp::kEq, Field(EventField::kHasDepData), Const(1.0)), out_of_range),
      .body = {Fail(p.on_fail, p.path, label)}});
  return m;
}

StateMachine LowerMinEnergy(const PropertyAst& p, const std::string& label, TaskId a) {
  StateMachine m;
  m.states = {kS0};
  m.initial = kS0;
  m.transitions.push_back(Transition{
      .from = kS0,
      .to = kS0,
      .trigger = TriggerKind::kStartTask,
      .task = a,
      .guard = Bin(BinOp::kLt, Field(EventField::kEnergyFraction), Const(p.min_energy)),
      .body = {Fail(p.on_fail, p.path, label)}});
  return m;
}

}  // namespace

StatusOr<StateMachine> LowerProperty(const PropertyAst& property, const std::string& task_name,
                                     const AppGraph& graph, const LoweringOptions& options) {
  const std::optional<TaskId> anchor = graph.FindTask(task_name);
  if (!anchor.has_value()) {
    return Status::Internal("LowerProperty: unknown task '" + task_name + "'");
  }
  TaskId dep = kInvalidTask;
  if (!property.dp_task.empty()) {
    const std::optional<TaskId> found = graph.FindTask(property.dp_task);
    if (!found.has_value()) {
      return Status::Internal("LowerProperty: unknown dpTask '" + property.dp_task + "'");
    }
    dep = *found;
  }

  const std::string label = property.Label(task_name);
  StateMachine machine;
  switch (property.kind) {
    case PropertyKind::kMaxTries:
      machine = LowerMaxTries(property, label, *anchor);
      break;
    case PropertyKind::kMaxDuration:
      machine = LowerMaxDuration(property, label, *anchor);
      break;
    case PropertyKind::kCollect:
      machine = LowerCollect(property, label, *anchor, dep, options.collect_reset_on_fail);
      break;
    case PropertyKind::kMitd:
      machine = LowerMitd(property, label, *anchor, dep);
      break;
    case PropertyKind::kPeriod:
      machine = LowerPeriod(property, label, *anchor);
      break;
    case PropertyKind::kDpData:
      machine = LowerDpData(property, label, *anchor);
      break;
    case PropertyKind::kMinEnergy:
      machine = LowerMinEnergy(property, label, *anchor);
      break;
  }
  machine.name = Sanitize(std::string(PropertyKindName(property.kind)) + "_" + task_name +
                          (property.dp_task.empty() ? "" : "_" + property.dp_task));
  machine.property_label = label;
  machine.source = property.Span();
  machine.anchor_task = *anchor;
  // The Path qualifier scopes events only when the anchor actually lies on
  // that path (path merging); for cross-path dependencies it is solely the
  // fail target already baked into the Fail statements.
  machine.path_scope = kNoPath;
  if (property.path != kNoPath) {
    const auto& scoped = graph.path(property.path);
    if (std::find(scoped.begin(), scoped.end(), *anchor) != scoped.end()) {
      machine.path_scope = property.path;
    }
  }
  if (const Status status = machine.Validate(); !status.ok()) {
    return status;
  }
  return machine;
}

StatusOr<std::vector<StateMachine>> LowerSpec(const SpecAst& spec, const AppGraph& graph,
                                              const LoweringOptions& options) {
  std::vector<StateMachine> machines;
  for (const TaskBlockAst& block : spec.blocks) {
    for (const PropertyAst& property : block.properties) {
      StatusOr<StateMachine> lowered = LowerProperty(property, block.task, graph, options);
      if (!lowered.ok()) {
        return lowered.status();
      }
      // Disambiguate duplicate names (two collect properties on `send`).
      std::string base = lowered.value().name;
      int suffix = 2;
      auto taken = [&machines](const std::string& candidate) {
        for (const StateMachine& m : machines) {
          if (m.name == candidate) {
            return true;
          }
        }
        return false;
      };
      while (taken(lowered.value().name)) {
        lowered.value().name = base + "_" + std::to_string(suffix++);
      }
      machines.push_back(std::move(lowered).value());
    }
  }
  return machines;
}

}  // namespace artemis
