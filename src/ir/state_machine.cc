#include "src/ir/state_machine.h"

#include <algorithm>
#include <sstream>

namespace artemis {

const char* TriggerKindName(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kStartTask:
      return "startTask";
    case TriggerKind::kEndTask:
      return "endTask";
    case TriggerKind::kAnyEvent:
      return "anyEvent";
  }
  return "?";
}

const char* SlotTypeName(SlotType type) {
  switch (type) {
    case SlotType::kFlag:
      return "flag";
    case SlotType::kCounter:
      return "counter";
    case SlotType::kTime:
      return "time";
  }
  return "?";
}

std::size_t SlotTypeWidth(SlotType type) {
  switch (type) {
    case SlotType::kFlag:
      return 1;
    case SlotType::kCounter:
      return 4;
    case SlotType::kTime:
      return 8;
  }
  return 8;
}

bool StateMachine::HasState(const std::string& state) const {
  return std::find(states.begin(), states.end(), state) != states.end();
}

Status StateMachine::Validate() const {
  if (states.empty()) {
    return Status::FailedPrecondition("machine '" + name + "' has no states");
  }
  if (!HasState(initial)) {
    return Status::FailedPrecondition("machine '" + name + "': initial state '" + initial +
                                      "' not declared");
  }
  for (const Transition& t : transitions) {
    if (!HasState(t.from) || !HasState(t.to)) {
      return Status::FailedPrecondition("machine '" + name + "': transition " + t.from + "->" +
                                        t.to + " references undeclared state");
    }
    if (t.trigger != TriggerKind::kAnyEvent && t.task == kInvalidTask) {
      return Status::FailedPrecondition("machine '" + name + "': " +
                                        TriggerKindName(t.trigger) +
                                        " trigger must name a task");
    }
    std::map<std::string, int> used;
    if (t.guard != nullptr) {
      CollectVars(*t.guard, &used);
    }
    CollectVars(t.body, &used);
    for (const auto& [var, _] : used) {
      if (variables.find(var) == variables.end()) {
        return Status::FailedPrecondition("machine '" + name + "': undeclared variable '" +
                                          var + "'");
      }
    }
  }
  return Status::Ok();
}

std::string StateMachine::ToString() const {
  std::ostringstream out;
  out << "machine " << name << " (" << property_label << ")\n";
  out << "  initial: " << initial << '\n';
  if (path_scope != kNoPath) {
    out << "  pathScope: " << path_scope << '\n';
  }
  for (const auto& [var, value] : variables) {
    out << "  var " << var << " = " << value << '\n';
  }
  for (const Transition& t : transitions) {
    out << "  " << t.from << " -> " << t.to << " : " << TriggerKindName(t.trigger);
    if (t.trigger != TriggerKind::kAnyEvent) {
      out << "(task#" << t.task << ")";
    }
    if (t.guard != nullptr) {
      out << " [" << ExprToC(*t.guard) << "]";
    }
    if (!t.body.empty()) {
      out << " / " << t.body.size() << " stmt(s)";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace artemis
