#include "src/apps/greenhouse_app.h"

#include "src/kernel/channel.h"

namespace artemis {

GreenhouseApp BuildGreenhouseApp() {
  GreenhouseApp app;

  app.soil_sense = app.graph.AddTask(TaskDef{
      .name = "soilSense",
      .work = {.duration = 50 * kMillisecond, .power = 3.0},
      .effect =
          [](TaskContext& ctx) {
            const double moisture = 0.35 + ctx.rng().Gaussian(0.0, 0.05);
            ctx.Push(moisture);
            ctx.SetMonitored(moisture);
          },
      .monitored_var = "moisture",
  });

  app.irrigate = app.graph.AddTask(TaskDef{
      .name = "irrigate",
      .work = {.duration = 30 * kMillisecond, .power = 1.2},
      .effect = [](TaskContext& ctx) { ctx.Push(1.0); },
      .monitored_var = std::nullopt,
  });

  app.light_sense = app.graph.AddTask(TaskDef{
      .name = "lightSense",
      .work = {.duration = 25 * kMillisecond, .power = 2.0},
      .effect = [](TaskContext& ctx) { ctx.Push(800.0 + ctx.rng().Gaussian(0.0, 60.0)); },
      .monitored_var = std::nullopt,
  });

  app.aggregate = app.graph.AddTask(TaskDef{
      .name = "aggregate",
      .work = {.duration = 20 * kMillisecond, .power = 0.66},
      .effect =
          [](TaskContext& ctx) {
            const auto& lux = ctx.SamplesOf("lightSense");
            ctx.Push(lux.empty() ? 0.0 : lux.back());
          },
      .monitored_var = std::nullopt,
  });

  app.report = app.graph.AddTask(TaskDef{
      .name = "report",
      .work = {.duration = 90 * kMillisecond, .power = 22.0},
      .effect = [](TaskContext& ctx) { ctx.Push(1.0); },
      .monitored_var = std::nullopt,
  });

  app.path_soil = app.graph.AddPath({app.soil_sense, app.irrigate});
  app.path_light = app.graph.AddPath({app.light_sense, app.aggregate, app.report});
  return app;
}

std::string GreenhouseSpec() {
  return R"(// Greenhouse sensing properties: periodicity, energy awareness,
// bounded retries, and a moisture range guard.
soilSense: {
  period: 2s jitter: 500ms onFail: restartTask;
  maxTries: 5 onFail: skipPath;
  dpData: moisture Range: [0.1, 0.8] onFail: completePath;
}

report: {
  minEnergy: 0.9 onFail: skipTask;
  maxDuration: 200ms onFail: skipTask;
  collect: 1 dpTask: lightSense onFail: restartPath Path: 2;
}

aggregate: {
  MITD: 30s dpTask: lightSense onFail: restartPath maxAttempt: 2 onFail: skipPath Path: 2;
}
)";
}

}  // namespace artemis
