#include "src/apps/health_app.h"

#include <numeric>

#include "src/kernel/channel.h"

namespace artemis {

HealthApp BuildHealthApp(const HealthAppOptions& options) {
  const PeripheralCatalog catalog = PeripheralCatalog::ThunderboardDefaults();
  HealthApp app;

  const double temp_mean = options.force_fever ? 39.2 : options.temp_mean;
  const double temp_noise = options.temp_noise;

  // --- Path #1 tasks: body-temperature average ---------------------------
  const PeripheralOp& temp_op = catalog.Get("temp_read");
  app.body_temp = app.graph.AddTask(TaskDef{
      .name = "bodyTemp",
      .work = {.duration = temp_op.duration, .power = temp_op.power},
      .effect =
          [temp_mean, temp_noise](TaskContext& ctx) {
            ctx.Push(ctx.rng().Gaussian(temp_mean, temp_noise));
          },
      .monitored_var = std::nullopt,
  });

  app.calc_avg = app.graph.AddTask(TaskDef{
      .name = "calcAvg",
      .work = {.duration = 40 * kMillisecond, .power = 0.66},
      .effect =
          [](TaskContext& ctx) {
            const std::vector<double>& samples = ctx.SamplesOf("bodyTemp");
            if (samples.empty()) {
              return;
            }
            const double avg = std::accumulate(samples.begin(), samples.end(), 0.0) /
                               static_cast<double>(samples.size());
            ctx.ConsumeAll("bodyTemp");
            ctx.Push(avg);
            ctx.SetMonitored(avg);  // avgTemp, watched by the dpData property.
          },
      .monitored_var = "avgTemp",
  });

  const PeripheralOp& hr_op = catalog.Get("heart_rate");
  app.heart_rate = app.graph.AddTask(TaskDef{
      .name = "heartRate",
      .work = {.duration = hr_op.duration, .power = hr_op.power},
      .effect = [](TaskContext& ctx) { ctx.Push(60.0 + ctx.rng().Gaussian(10.0, 4.0)); },
      .monitored_var = std::nullopt,
  });

  // --- Path #2 tasks: respiration rate ------------------------------------
  const PeripheralOp& accel_op = catalog.Get("accel_burst");
  app.accel = app.graph.AddTask(TaskDef{
      .name = "accel",
      .work = {.duration = accel_op.duration, .power = accel_op.power},
      .effect = [](TaskContext& ctx) { ctx.Push(ctx.rng().Gaussian(0.0, 1.0)); },
      .monitored_var = std::nullopt,
  });

  app.filter = app.graph.AddTask(TaskDef{
      .name = "filter",
      .work = {.duration = 15 * kMillisecond, .power = 0.66},
      .effect =
          [](TaskContext& ctx) {
            // Breath rate from the accelerometer burst.
            const double raw =
                ctx.SamplesOf("accel").empty() ? 0.0 : ctx.SamplesOf("accel").back();
            ctx.Push(14.0 + raw * 2.0);
          },
      .monitored_var = std::nullopt,
  });

  // --- Path #3 tasks: cough detection -------------------------------------
  const PeripheralOp& mic_op = catalog.Get("mic_capture");
  app.mic_sense = app.graph.AddTask(TaskDef{
      .name = "micSense",
      .work = {.duration = mic_op.duration, .power = mic_op.power},
      .effect = [](TaskContext& ctx) { ctx.Push(ctx.rng().NextDouble()); },
      .monitored_var = std::nullopt,
  });

  app.classify = app.graph.AddTask(TaskDef{
      .name = "classify",
      .work = {.duration = 60 * kMillisecond, .power = 0.9},
      .effect =
          [](TaskContext& ctx) {
            const double level =
                ctx.SamplesOf("micSense").empty() ? 0.0 : ctx.SamplesOf("micSense").back();
            ctx.Push(level > 0.92 ? 1.0 : 0.0);  // cough / no cough
          },
      .monitored_var = std::nullopt,
  });

  // --- Shared sink --------------------------------------------------------
  const PeripheralOp& ble_op = catalog.Get("ble_send");
  app.send = app.graph.AddTask(TaskDef{
      .name = "send",
      // 80 ms BLE burst: inside the 100 ms maxDuration budget on continuous
      // power, violated only when a power failure splits the task.
      .work = {.duration = 80 * kMillisecond, .power = ble_op.power},
      .effect = [](TaskContext& ctx) { ctx.Push(1.0); },  // transmission record
      .monitored_var = std::nullopt,
  });

  app.path_temp =
      app.graph.AddPath({app.body_temp, app.calc_avg, app.heart_rate, app.send});
  app.path_resp = app.graph.AddPath({app.accel, app.filter, app.send});
  app.path_cough = app.graph.AddPath({app.mic_sense, app.classify, app.send});
  return app;
}

std::string HealthAppSpec() {
  return R"(// Figure 5: property specification of the health monitoring app.
micSense: {
  maxTries: 10 onFail: skipPath;
}

send: {
  MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
  maxDuration: 100ms onFail: skipTask;
  collect: 1 dpTask: accel onFail: restartPath Path: 2;
  collect: 1 dpTask: micSense onFail: restartPath Path: 3;
}

calcAvg: {
  collect: 10 dpTask: bodyTemp onFail: restartPath;
  dpData: avgTemp Range: [36, 38] onFail: completePath;
}

accel: {
  maxTries: 10 onFail: skipPath;
}
)";
}

std::string HealthAppSpecNoMaxAttempt() {
  return R"(// Ablation: ARTEMIS restricted to Mayfly-expressible reactions.
micSense: {
  maxTries: 10 onFail: skipPath;
}

send: {
  MITD: 5min dpTask: accel onFail: restartPath Path: 2;
  maxDuration: 100ms onFail: skipTask;
  collect: 1 dpTask: accel onFail: restartPath Path: 2;
  collect: 1 dpTask: micSense onFail: restartPath Path: 3;
}

calcAvg: {
  collect: 10 dpTask: bodyTemp onFail: restartPath;
  dpData: avgTemp Range: [36, 38] onFail: completePath;
}

accel: {
  maxTries: 10 onFail: skipPath;
}
)";
}

}  // namespace artemis
