// The wearable health-monitoring benchmark application (Figures 4-6).
//
// Eight tasks across three merged paths:
//   Path #1: bodyTemp -> calcAvg -> heartRate -> send   (temperature average)
//   Path #2: accel    -> filter  -> send                (respiration rate)
//   Path #3: micSense -> classify -> send               (cough detection)
// `send` appears on every path (path merging), which is why its properties
// carry explicit Path qualifiers in the Figure 5 spec.
//
// Task work costs come from the Thunderboard peripheral catalogue; `accel`
// and `send` are the expensive ones (Section 5.1), which is what makes power
// failures land between them under a small energy budget.
#ifndef SRC_APPS_HEALTH_APP_H_
#define SRC_APPS_HEALTH_APP_H_

#include <string>

#include "src/kernel/app_graph.h"
#include "src/sim/peripherals.h"

namespace artemis {

struct HealthAppOptions {
  double temp_mean = 36.6;   // deg C; keep inside [36, 38] for normal runs
  double temp_noise = 0.15;  // stddev of simulated body-temperature readings
  // Force a fever so the calcAvg dpData property fires (for tests/examples
  // of completePath).
  bool force_fever = false;
};

struct HealthApp {
  AppGraph graph;
  TaskId body_temp = kInvalidTask;
  TaskId calc_avg = kInvalidTask;
  TaskId heart_rate = kInvalidTask;
  TaskId accel = kInvalidTask;
  TaskId filter = kInvalidTask;
  TaskId mic_sense = kInvalidTask;
  TaskId classify = kInvalidTask;
  TaskId send = kInvalidTask;
  PathId path_temp = kNoPath;   // #1
  PathId path_resp = kNoPath;   // #2
  PathId path_cough = kNoPath;  // #3
};

// Builds the application graph with Thunderboard-calibrated task costs.
HealthApp BuildHealthApp(const HealthAppOptions& options = {});

// The Figure 5 property specification (ARTEMIS surface syntax). Both the
// ARTEMIS runtime and the Mayfly baseline are configured from this text;
// Mayfly keeps only the MITD/collect subset (Section 5.1.1).
std::string HealthAppSpec();

// Spec variant without the maxAttempt escape on the MITD property — i.e.
// what ARTEMIS would do if it only matched Mayfly's semantics. Used by the
// ablation bench.
std::string HealthAppSpecNoMaxAttempt();

}  // namespace artemis

#endif  // SRC_APPS_HEALTH_APP_H_
