// Activity recognition (AR): the classic intermittent-computing benchmark
// workload (used by Chain, Alpaca, and the paper's related-work systems).
// A window of accelerometer samples is featurized and classified
// (moving/stationary) with a nearest-centroid model; class counts are
// accumulated and reported over BLE after enough windows.
//
//   Path #1: sampleWindow -> featurize -> classify -> count
//   Path #2: report
#ifndef SRC_APPS_AR_APP_H_
#define SRC_APPS_AR_APP_H_

#include <string>

#include "src/kernel/app_graph.h"

namespace artemis {

struct ArApp {
  AppGraph graph;
  TaskId sample_window = kInvalidTask;
  TaskId featurize = kInvalidTask;
  TaskId classify = kInvalidTask;
  TaskId count = kInvalidTask;
  TaskId report = kInvalidTask;
  PathId path_window = kNoPath;
  PathId path_report = kNoPath;
};

struct ArAppOptions {
  // Fraction of windows that contain motion (drives the class mix).
  double moving_fraction = 0.4;
  // Accelerometer samples per window (scales sampleWindow's work).
  int window_size = 128;
};

ArApp BuildArApp(const ArAppOptions& options = {});

// Properties: bounded window retries, report requires 4 counted windows,
// freshness between counting and reporting, and a report deadline.
std::string ArAppSpec();

}  // namespace artemis

#endif  // SRC_APPS_AR_APP_H_
