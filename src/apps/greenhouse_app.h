// A second, smaller application: batteryless greenhouse sensing. Exercises
// the properties the health benchmark does not (period, minEnergy) and is
// used by the greenhouse example and the property-sweep tests.
//
//   Path #1: soilSense -> irrigate
//   Path #2: lightSense -> aggregate -> report
#ifndef SRC_APPS_GREENHOUSE_APP_H_
#define SRC_APPS_GREENHOUSE_APP_H_

#include <string>

#include "src/kernel/app_graph.h"

namespace artemis {

struct GreenhouseApp {
  AppGraph graph;
  TaskId soil_sense = kInvalidTask;
  TaskId irrigate = kInvalidTask;
  TaskId light_sense = kInvalidTask;
  TaskId aggregate = kInvalidTask;
  TaskId report = kInvalidTask;
  PathId path_soil = kNoPath;
  PathId path_light = kNoPath;
};

GreenhouseApp BuildGreenhouseApp();

// Property spec: periodic soil sampling, energy-aware reporting, bounded
// re-execution, and a data-dependency guard on the soil moisture value.
std::string GreenhouseSpec();

}  // namespace artemis

#endif  // SRC_APPS_GREENHOUSE_APP_H_
