#include "src/apps/ar_app.h"

#include <cmath>

#include "src/kernel/channel.h"

namespace artemis {
namespace {

// Nearest-centroid model over (mean-magnitude, stddev) features; constants
// picked so the two synthetic classes separate cleanly.
constexpr double kStillCentroid[2] = {1.0, 0.05};
constexpr double kMovingCentroid[2] = {1.3, 0.45};

double Distance2(const double a[2], double x, double y) {
  const double dx = a[0] - x;
  const double dy = a[1] - y;
  return dx * dx + dy * dy;
}

}  // namespace

ArApp BuildArApp(const ArAppOptions& options) {
  ArApp app;
  const int window = options.window_size;
  const double moving_fraction = options.moving_fraction;

  // Sampling dominates the energy budget: ~0.9 ms at 9 mW per sample.
  app.sample_window = app.graph.AddTask(TaskDef{
      .name = "sampleWindow",
      .work = {.duration = static_cast<SimDuration>(window) * 900, .power = 9.0},
      .effect =
          [window, moving_fraction](TaskContext& ctx) {
            // Emit the window as (mean, stddev) summary samples: the moving
            // class has a larger mean magnitude and much larger variance.
            const bool moving = ctx.rng().NextDouble() < moving_fraction;
            const double mean =
                moving ? ctx.rng().Gaussian(1.3, 0.05) : ctx.rng().Gaussian(1.0, 0.02);
            double m2 = 0.0;
            for (int i = 0; i < window; ++i) {
              const double sample =
                  ctx.rng().Gaussian(mean, moving ? 0.45 : 0.05);
              m2 += (sample - mean) * (sample - mean);
            }
            ctx.Push(mean);
            ctx.Push(std::sqrt(m2 / window));
          },
      .monitored_var = std::nullopt,
  });

  app.featurize = app.graph.AddTask(TaskDef{
      .name = "featurize",
      .work = {.duration = 25 * kMillisecond, .power = 0.9},
      .effect =
          [](TaskContext& ctx) {
            const auto& raw = ctx.SamplesOf("sampleWindow");
            if (raw.size() < 2) {
              return;
            }
            // The last (mean, stddev) pair is this window's feature vector.
            ctx.Push(raw[raw.size() - 2]);
            ctx.Push(raw[raw.size() - 1]);
            ctx.ConsumeAll("sampleWindow");
          },
      .monitored_var = std::nullopt,
  });

  app.classify = app.graph.AddTask(TaskDef{
      .name = "classify",
      .work = {.duration = 8 * kMillisecond, .power = 0.9},
      .effect =
          [](TaskContext& ctx) {
            const auto& features = ctx.SamplesOf("featurize");
            if (features.size() < 2) {
              return;
            }
            const double mean = features[features.size() - 2];
            const double stddev = features[features.size() - 1];
            const bool moving = Distance2(kMovingCentroid, mean, stddev) <
                                Distance2(kStillCentroid, mean, stddev);
            ctx.Push(moving ? 1.0 : 0.0);
            ctx.ConsumeAll("featurize");
          },
      .monitored_var = std::nullopt,
  });

  app.count = app.graph.AddTask(TaskDef{
      .name = "count",
      .work = {.duration = 3 * kMillisecond, .power = 0.66},
      .effect =
          [](TaskContext& ctx) {
            const auto& classes = ctx.SamplesOf("classify");
            ctx.Push(classes.empty() ? 0.0 : classes.back());
            ctx.ConsumeAll("classify");
            // Running moving-fraction estimate, exposed for dpData.
            const auto& mine = ctx.SamplesOf("count");
            double moving = ctx.staged_samples().back();
            for (const double c : mine) {
              moving += c;
            }
            ctx.SetMonitored(moving / static_cast<double>(mine.size() + 1));
          },
      .monitored_var = "movingFraction",
  });

  app.report = app.graph.AddTask(TaskDef{
      .name = "report",
      .work = {.duration = 90 * kMillisecond, .power = 24.0},
      .effect = [](TaskContext& ctx) { ctx.ConsumeAll("count"); },
      .monitored_var = std::nullopt,
  });

  app.path_window =
      app.graph.AddPath({app.sample_window, app.featurize, app.classify, app.count});
  app.path_report = app.graph.AddPath({app.report});
  return app;
}

std::string ArAppSpec() {
  return R"(// Activity recognition: bounded sampling retries, four counted
// windows per report, freshness between counting and reporting.
sampleWindow: {
  maxTries: 8 onFail: skipPath;
}

report: {
  // Cross-path dependencies: the Path qualifier names the *producing* path
  // to restart (the anchor `report` is not on path 1).
  collect: 4 dpTask: count onFail: restartPath Path: 1;
  MITD: 2min dpTask: count onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 1;
  maxDuration: 150ms onFail: skipTask;
}

count: {
  dpData: movingFraction Range: [0, 0.9] onFail: completePath;
}
)";
}

}  // namespace artemis
