// Application description language: the textual counterpart of Figure 4's
// task and path declarations, so applications can be described, checked, and
// simulated without recompiling (the artemisc --app-file flow).
//
// Syntax:
//
//   app health {
//     task bodyTemp { duration: 20ms; power: 2mW; value: gaussian(36.6, 0.15); }
//     task calcAvg  { duration: 40ms; power: 660uW; monitors: avgTemp; }
//     task send     { duration: 80ms; power: 24mW; }
//     path 1: bodyTemp -> calcAvg -> send;
//     path 2: send;
//   }
//
// Task attributes: `duration` and `power` give the work model; `value`
// (a constant or gaussian(mean, stddev)) is the sample the task pushes per
// committed run (default 1.0); `monitors: <var>` declares the Figure 4
// monitored dependent variable, set to the pushed value at commit.
// Path numbers must be declared in order 1..N.
#ifndef SRC_SPEC_APP_LANG_H_
#define SRC_SPEC_APP_LANG_H_

#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/kernel/app_graph.h"

namespace artemis {

struct AppDescription {
  std::string name;
  AppGraph graph;
};

// Parses an app description and builds the executable graph (tasks carry
// synthetic push-value effects per the `value` attribute).
StatusOr<AppDescription> ParseAppDescription(std::string_view source);

}  // namespace artemis

#endif  // SRC_SPEC_APP_LANG_H_
