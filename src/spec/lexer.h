// Lexer for the ARTEMIS property specification language.
//
// Handles the Figure 5 surface syntax: identifiers, numbers, duration
// literals with attached units (5min, 100ms), punctuation, line comments
// (// and #) and block comments (/* */).
#ifndef SRC_SPEC_LEXER_H_
#define SRC_SPEC_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/spec/token.h"

namespace artemis {

class Lexer {
 public:
  explicit Lexer(std::string_view source);

  // Tokenizes the entire input. The final token is always kEndOfInput.
  // Malformed input yields a kError token at the offending position and
  // stops.
  std::vector<Token> Tokenize();

 private:
  Token Next();
  void SkipWhitespaceAndComments();
  char Peek(int ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= source_.size(); }
  Token Make(TokenKind kind, std::string text) const;

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

}  // namespace artemis

#endif  // SRC_SPEC_LEXER_H_
