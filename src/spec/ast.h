// Abstract syntax tree of the ARTEMIS property specification language.
//
// Each task block groups property clauses for one task (Figure 5). Property
// clauses carry the Table 1 constructs: the property key with its value plus
// the dpTask / onFail / maxAttempt / Path / Range modifiers.
#ifndef SRC_SPEC_AST_H_
#define SRC_SPEC_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/source_span.h"
#include "src/base/time.h"
#include "src/kernel/checker.h"
#include "src/kernel/task.h"

namespace artemis {

enum class PropertyKind : std::uint8_t {
  kMaxTries,     // maxTries: N
  kMaxDuration,  // maxDuration: D
  kMitd,         // MITD: D dpTask: B
  kCollect,      // collect: N dpTask: B
  kDpData,       // dpData: var Range: [lo, hi]
  kPeriod,       // period: D [jitter: J]
  kMinEnergy,    // minEnergy: F  (Section 4.2.2 extension)
};

const char* PropertyKindName(PropertyKind kind);

struct PropertyAst {
  PropertyKind kind = PropertyKind::kMaxTries;

  // Main value (which field is meaningful depends on `kind`).
  std::uint64_t count = 0;      // maxTries, collect
  SimDuration duration = 0;     // maxDuration, MITD, period
  std::string dp_data_var;      // dpData variable name
  double min_energy = 0.0;      // minEnergy fraction in (0, 1]

  // Modifiers.
  std::string dp_task;                              // dpTask: <task>
  ActionType on_fail = ActionType::kNone;           // first onFail
  bool has_on_fail = false;
  std::uint32_t max_attempt = 0;                    // maxAttempt: N
  ActionType max_attempt_action = ActionType::kNone;  // onFail after maxAttempt
  bool has_max_attempt_action = false;
  PathId path = kNoPath;                            // Path: N
  double range_lo = 0.0, range_hi = 0.0;            // Range: [lo, hi]
  bool has_range = false;
  SimDuration jitter = 0;                           // jitter: D (period only)

  // Source position of the property key token (threaded from the lexer so
  // IR-level diagnostics can point back at the spec text).
  int line = 0;
  int column = 0;

  SourceSpan Span() const { return SourceSpan{line, column}; }

  // Human-readable label for traces, e.g. "MITD(send<-accel)".
  std::string Label(const std::string& task_name) const;
};

struct TaskBlockAst {
  std::string task;
  std::vector<PropertyAst> properties;
  int line = 0;
  int column = 0;
};

// One rule inside a top-level `migrate { ... }` block (docs/hotswap.md).
// The block lives in the NEW spec of a hot-swap pair and overrides the
// default name-based mapping from the currently installed (old) image:
//   migrate {
//     machine oldName -> newName;          // carry a renamed machine over
//     state machineName: oldState -> newState;
//     slot  machineName: oldSlot  -> newSlot;
//   }
// `machine`/`state`/`slot` names refer to lowered FSM names (artemisc dot
// shows them); mapping a state to `initial` is an explicit conservative
// reset that silences the unmapped-live-state warning (ART015).
struct MigrationRuleAst {
  enum class Kind : std::uint8_t { kMachine, kState, kSlot };
  Kind kind = Kind::kMachine;
  std::string machine;  // empty for kMachine rules (from/to are machines)
  std::string from;
  std::string to;
  int line = 0;
  int column = 0;

  SourceSpan Span() const { return SourceSpan{line, column}; }
};

struct MigrationAst {
  std::vector<MigrationRuleAst> rules;

  bool empty() const { return rules.empty(); }
};

struct SpecAst {
  std::vector<TaskBlockAst> blocks;
  // Hot-swap migration overrides; empty for specs that never replace a
  // live image (the common case). Ignored outside the swap planner.
  MigrationAst migration;

  std::size_t PropertyCount() const;
  // Round-trips the AST back to Figure 5 style surface syntax.
  std::string Pretty() const;
};

// Maps an onFail action identifier to the ActionType; returns kNone with
// ok=false for unknown identifiers.
bool ParseActionName(const std::string& name, ActionType* out);

}  // namespace artemis

#endif  // SRC_SPEC_AST_H_
