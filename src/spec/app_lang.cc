#include "src/spec/app_lang.h"

#include <vector>

#include "src/kernel/channel.h"
#include "src/spec/lexer.h"

namespace artemis {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<AppDescription> Run() {
    AppDescription app;
    if (Status status = ExpectKeyword("app"); !status.ok()) {
      return status;
    }
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorAt(Peek(), "expected the application name");
    }
    app.name = Advance().text;
    if (Status status = Expect(TokenKind::kLBrace); !status.ok()) {
      return status;
    }
    while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEndOfInput)) {
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAt(Peek(), "expected 'task' or 'path'");
      }
      if (Peek().text == "task") {
        if (Status status = ParseTask(&app); !status.ok()) {
          return status;
        }
      } else if (Peek().text == "path") {
        if (Status status = ParsePath(&app); !status.ok()) {
          return status;
        }
      } else {
        return ErrorAt(Peek(), "unknown declaration '" + Peek().text + "'");
      }
    }
    if (Status status = Expect(TokenKind::kRBrace); !status.ok()) {
      return status;
    }
    if (Status status = app.graph.Validate(); !status.ok()) {
      return status;
    }
    return app;
  }

 private:
  Status ParseTask(AppDescription* app) {
    Advance();  // 'task'
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorAt(Peek(), "expected a task name");
    }
    const Token name = Advance();
    if (app->graph.FindTask(name.text).has_value()) {
      return ErrorAt(name, "duplicate task '" + name.text + "'");
    }
    if (Status status = Expect(TokenKind::kLBrace); !status.ok()) {
      return status;
    }

    TaskDef def;
    def.name = name.text;
    double value_mean = 1.0;
    double value_stddev = 0.0;
    while (Check(TokenKind::kIdentifier)) {
      const Token attr = Advance();
      if (Status status = Expect(TokenKind::kColon); !status.ok()) {
        return status;
      }
      if (attr.text == "duration") {
        if (!Check(TokenKind::kDuration) && !Check(TokenKind::kNumber)) {
          return ErrorAt(Peek(), "expected a duration");
        }
        const Token token = Advance();
        def.work.duration =
            token.kind == TokenKind::kDuration
                ? token.duration
                : static_cast<SimDuration>(token.number * static_cast<double>(kMillisecond));
      } else if (attr.text == "power") {
        if (!Check(TokenKind::kPower) && !Check(TokenKind::kNumber)) {
          return ErrorAt(Peek(), "expected a power (e.g. 9mW)");
        }
        const Token token = Advance();
        def.work.power = token.kind == TokenKind::kPower ? token.power : token.number;
      } else if (attr.text == "value") {
        if (Check(TokenKind::kNumber)) {
          value_mean = Advance().number;
          value_stddev = 0.0;
        } else if (Check(TokenKind::kIdentifier) && Peek().text == "gaussian") {
          Advance();
          if (Status status = Expect(TokenKind::kLParen); !status.ok()) {
            return status;
          }
          if (!Check(TokenKind::kNumber)) {
            return ErrorAt(Peek(), "expected the gaussian mean");
          }
          value_mean = Advance().number;
          if (Status status = Expect(TokenKind::kComma); !status.ok()) {
            return status;
          }
          if (!Check(TokenKind::kNumber)) {
            return ErrorAt(Peek(), "expected the gaussian stddev");
          }
          value_stddev = Advance().number;
          if (Status status = Expect(TokenKind::kRParen); !status.ok()) {
            return status;
          }
        } else {
          return ErrorAt(Peek(), "expected a number or gaussian(mean, stddev)");
        }
      } else if (attr.text == "monitors") {
        if (!Check(TokenKind::kIdentifier)) {
          return ErrorAt(Peek(), "expected a variable name");
        }
        def.monitored_var = Advance().text;
      } else {
        return ErrorAt(attr, "unknown task attribute '" + attr.text + "'");
      }
      if (Status status = Expect(TokenKind::kSemicolon); !status.ok()) {
        return status;
      }
    }
    if (Status status = Expect(TokenKind::kRBrace); !status.ok()) {
      return status;
    }

    const bool monitored = def.monitored_var.has_value();
    def.effect = [value_mean, value_stddev, monitored](TaskContext& ctx) {
      const double value =
          value_stddev > 0.0 ? ctx.rng().Gaussian(value_mean, value_stddev) : value_mean;
      ctx.Push(value);
      if (monitored) {
        ctx.SetMonitored(value);
      }
    };
    app->graph.AddTask(std::move(def));
    return Status::Ok();
  }

  Status ParsePath(AppDescription* app) {
    const Token keyword = Advance();  // 'path'
    if (!Check(TokenKind::kNumber)) {
      return ErrorAt(Peek(), "expected the path number");
    }
    const PathId number = static_cast<PathId>(Advance().number);
    if (number != app->graph.path_count() + 1) {
      return ErrorAt(keyword, "paths must be declared in order; expected path " +
                                  std::to_string(app->graph.path_count() + 1));
    }
    if (Status status = Expect(TokenKind::kColon); !status.ok()) {
      return status;
    }
    std::vector<std::string> names;
    while (true) {
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAt(Peek(), "expected a task name in the path");
      }
      names.push_back(Advance().text);
      if (!Check(TokenKind::kArrow)) {
        break;
      }
      Advance();
    }
    if (Status status = Expect(TokenKind::kSemicolon); !status.ok()) {
      return status;
    }
    StatusOr<PathId> added = app->graph.AddPathByNames(names);
    if (!added.ok()) {
      return Status::NotFound("line " + std::to_string(keyword.line) + ": " +
                              added.status().message());
    }
    return Status::Ok();
  }

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  Status Expect(TokenKind kind) {
    if (Check(kind)) {
      Advance();
      return Status::Ok();
    }
    return ErrorAt(Peek(), std::string("expected ") + TokenKindName(kind) + ", found " +
                               Peek().Describe());
  }
  Status ExpectKeyword(const std::string& word) {
    if (Check(TokenKind::kIdentifier) && Peek().text == word) {
      Advance();
      return Status::Ok();
    }
    return ErrorAt(Peek(), "expected '" + word + "'");
  }
  Status ErrorAt(const Token& token, const std::string& message) const {
    return Status::Invalid("line " + std::to_string(token.line) + ":" +
                           std::to_string(token.column) + ": " + message);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<AppDescription> ParseAppDescription(std::string_view source) {
  std::vector<Token> tokens = Lexer(source).Tokenize();
  if (!tokens.empty() && tokens.back().kind == TokenKind::kError) {
    const Token& bad = tokens.back();
    return Status::Invalid("lex error at line " + std::to_string(bad.line) + ": unexpected '" +
                           bad.text + "'");
  }
  return Parser(std::move(tokens)).Run();
}

}  // namespace artemis
