#include "src/spec/parser.h"

#include <cmath>

#include "src/spec/lexer.h"

namespace artemis {
namespace {

bool PropertyKeyFromName(const std::string& name, PropertyKind* out) {
  if (name == "maxTries") {
    *out = PropertyKind::kMaxTries;
  } else if (name == "maxDuration") {
    *out = PropertyKind::kMaxDuration;
  } else if (name == "MITD") {
    *out = PropertyKind::kMitd;
  } else if (name == "collect") {
    *out = PropertyKind::kCollect;
  } else if (name == "dpData") {
    *out = PropertyKind::kDpData;
  } else if (name == "period") {
    *out = PropertyKind::kPeriod;
  } else if (name == "minEnergy") {
    *out = PropertyKind::kMinEnergy;
  } else {
    return false;
  }
  return true;
}

}  // namespace

StatusOr<SpecAst> SpecParser::Parse(std::string_view source) {
  std::vector<Token> tokens = Lexer(source).Tokenize();
  if (!tokens.empty() && tokens.back().kind == TokenKind::kError) {
    const Token& bad = tokens.back();
    return Status::Invalid("lex error at line " + std::to_string(bad.line) + ":" +
                           std::to_string(bad.column) + ": unexpected '" + bad.text + "'");
  }
  return SpecParser(std::move(tokens)).ParseSpec();
}

bool SpecParser::Match(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

Status SpecParser::Expect(TokenKind kind, const std::string& context) {
  if (Check(kind)) {
    Advance();
    return Status::Ok();
  }
  return ErrorAt(Peek(), "expected " + std::string(TokenKindName(kind)) + " " + context +
                             ", found " + Peek().Describe());
}

Status SpecParser::ErrorAt(const Token& token, const std::string& message) const {
  return Status::Invalid("line " + std::to_string(token.line) + ":" +
                         std::to_string(token.column) + ": " + message);
}

StatusOr<SpecAst> SpecParser::ParseSpec() {
  SpecAst spec;
  while (!Check(TokenKind::kEndOfInput)) {
    // `migrate` is reserved at the top level: it opens the hot-swap
    // migration-override block instead of a task block (docs/hotswap.md).
    const Status status = Check(TokenKind::kIdentifier) && Peek().text == "migrate"
                              ? ParseMigrate(&spec)
                              : ParseBlock(&spec);
    if (!status.ok()) {
      return status;
    }
  }
  return spec;
}

Status SpecParser::ParseMigrate(SpecAst* spec) {
  const Token keyword = Advance();  // 'migrate'
  if (!spec->migration.empty()) {
    return ErrorAt(keyword, "duplicate migrate block (merge the rules into one block)");
  }
  if (Status status = Expect(TokenKind::kLBrace, "to open the migrate block"); !status.ok()) {
    return status;
  }
  while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEndOfInput)) {
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorAt(Peek(), "expected a migrate rule (machine|state|slot), found " +
                                 Peek().Describe());
    }
    const Token head = Advance();
    MigrationRuleAst rule;
    rule.line = head.line;
    rule.column = head.column;
    if (head.text == "machine") {
      rule.kind = MigrationRuleAst::Kind::kMachine;
    } else if (head.text == "state") {
      rule.kind = MigrationRuleAst::Kind::kState;
    } else if (head.text == "slot") {
      rule.kind = MigrationRuleAst::Kind::kSlot;
    } else {
      return ErrorAt(head, "unknown migrate rule '" + head.text + "' (machine|state|slot)");
    }
    if (rule.kind != MigrationRuleAst::Kind::kMachine) {
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAt(Peek(), "expected a machine name, found " + Peek().Describe());
      }
      rule.machine = Advance().text;
      if (Status status = Expect(TokenKind::kColon, "after the machine name"); !status.ok()) {
        return status;
      }
    }
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorAt(Peek(), "expected the old name, found " + Peek().Describe());
    }
    rule.from = Advance().text;
    if (Status status = Expect(TokenKind::kArrow, "between the old and new names");
        !status.ok()) {
      return status;
    }
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorAt(Peek(), "expected the new name, found " + Peek().Describe());
    }
    rule.to = Advance().text;
    if (Status status = Expect(TokenKind::kSemicolon, "to end the migrate rule");
        !status.ok()) {
      return status;
    }
    spec->migration.rules.push_back(std::move(rule));
  }
  if (Status status = Expect(TokenKind::kRBrace, "to close the migrate block"); !status.ok()) {
    return status;
  }
  return Status::Ok();
}

Status SpecParser::ParseBlock(SpecAst* spec) {
  if (!Check(TokenKind::kIdentifier)) {
    return ErrorAt(Peek(), "expected a task name, found " + Peek().Describe());
  }
  TaskBlockAst block;
  block.task = Peek().text;
  block.line = Peek().line;
  block.column = Peek().column;
  Advance();
  Match(TokenKind::kColon);  // Optional: both "send: {" and "calcAvg {" occur in Figure 5.
  if (Status status = Expect(TokenKind::kLBrace, "to open task block '" + block.task + "'");
      !status.ok()) {
    return status;
  }
  while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEndOfInput)) {
    if (Status status = ParseProperty(&block); !status.ok()) {
      return status;
    }
  }
  if (Status status = Expect(TokenKind::kRBrace, "to close task block '" + block.task + "'");
      !status.ok()) {
    return status;
  }
  spec->blocks.push_back(std::move(block));
  return Status::Ok();
}

Status SpecParser::ParseProperty(TaskBlockAst* block) {
  if (!Check(TokenKind::kIdentifier)) {
    return ErrorAt(Peek(), "expected a property key, found " + Peek().Describe());
  }
  const Token key = Advance();
  PropertyAst property;
  property.line = key.line;
  property.column = key.column;
  if (!PropertyKeyFromName(key.text, &property.kind)) {
    return ErrorAt(key, "unknown property '" + key.text + "'");
  }
  if (Status status = Expect(TokenKind::kColon, "after property key"); !status.ok()) {
    return status;
  }

  // Main value.
  switch (property.kind) {
    case PropertyKind::kMaxTries:
    case PropertyKind::kCollect: {
      if (!Check(TokenKind::kNumber)) {
        return ErrorAt(Peek(), "expected a count, found " + Peek().Describe());
      }
      const double value = Advance().number;
      if (value < 0 || value != std::floor(value)) {
        return ErrorAt(key, "count must be a non-negative integer");
      }
      property.count = static_cast<std::uint64_t>(value);
      break;
    }
    case PropertyKind::kMaxDuration:
    case PropertyKind::kMitd:
    case PropertyKind::kPeriod: {
      if (Check(TokenKind::kDuration)) {
        property.duration = Advance().duration;
      } else if (Check(TokenKind::kNumber)) {
        // Bare numbers default to milliseconds (ParseDuration convention).
        property.duration =
            static_cast<SimDuration>(Advance().number * static_cast<double>(kMillisecond));
      } else {
        return ErrorAt(Peek(), "expected a duration, found " + Peek().Describe());
      }
      break;
    }
    case PropertyKind::kDpData: {
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAt(Peek(), "expected a variable name, found " + Peek().Describe());
      }
      property.dp_data_var = Advance().text;
      break;
    }
    case PropertyKind::kMinEnergy: {
      if (!Check(TokenKind::kNumber)) {
        return ErrorAt(Peek(), "expected an energy fraction, found " + Peek().Describe());
      }
      property.min_energy = Advance().number;
      break;
    }
  }

  if (Status status = ParseModifiers(&property); !status.ok()) {
    return status;
  }
  if (Status status = Expect(TokenKind::kSemicolon, "to end the property"); !status.ok()) {
    return status;
  }
  block->properties.push_back(std::move(property));
  return Status::Ok();
}

Status SpecParser::ParseModifiers(PropertyAst* property) {
  bool seen_max_attempt = false;
  while (Check(TokenKind::kIdentifier)) {
    const Token word = Advance();
    if (Status status = Expect(TokenKind::kColon, "after '" + word.text + "'"); !status.ok()) {
      return status;
    }
    if (word.text == "dpTask") {
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAt(Peek(), "expected a task name after dpTask");
      }
      property->dp_task = Advance().text;
    } else if (word.text == "onFail") {
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAt(Peek(), "expected an action after onFail");
      }
      const Token action = Advance();
      ActionType parsed = ActionType::kNone;
      if (!ParseActionName(action.text, &parsed)) {
        return ErrorAt(action, "unknown action '" + action.text + "'");
      }
      // The first onFail binds the property; an onFail after maxAttempt
      // binds the attempt-exhausted case (Figure 5 line 6).
      if (seen_max_attempt && !property->has_max_attempt_action) {
        property->max_attempt_action = parsed;
        property->has_max_attempt_action = true;
      } else if (!property->has_on_fail) {
        property->on_fail = parsed;
        property->has_on_fail = true;
      } else {
        return ErrorAt(action, "duplicate onFail");
      }
    } else if (word.text == "maxAttempt") {
      if (!Check(TokenKind::kNumber)) {
        return ErrorAt(Peek(), "expected a count after maxAttempt");
      }
      property->max_attempt = static_cast<std::uint32_t>(Advance().number);
      seen_max_attempt = true;
    } else if (word.text == "Path") {
      if (!Check(TokenKind::kNumber)) {
        return ErrorAt(Peek(), "expected a path number after Path");
      }
      property->path = static_cast<PathId>(Advance().number);
    } else if (word.text == "Range") {
      if (Status status = Expect(TokenKind::kLBracket, "to open Range"); !status.ok()) {
        return status;
      }
      if (!Check(TokenKind::kNumber)) {
        return ErrorAt(Peek(), "expected the Range lower bound");
      }
      property->range_lo = Advance().number;
      if (Status status = Expect(TokenKind::kComma, "between Range bounds"); !status.ok()) {
        return status;
      }
      if (!Check(TokenKind::kNumber)) {
        return ErrorAt(Peek(), "expected the Range upper bound");
      }
      property->range_hi = Advance().number;
      if (Status status = Expect(TokenKind::kRBracket, "to close Range"); !status.ok()) {
        return status;
      }
      property->has_range = true;
    } else if (word.text == "jitter") {
      if (Check(TokenKind::kDuration)) {
        property->jitter = Advance().duration;
      } else if (Check(TokenKind::kNumber)) {
        property->jitter =
            static_cast<SimDuration>(Advance().number * static_cast<double>(kMillisecond));
      } else {
        return ErrorAt(Peek(), "expected a duration after jitter");
      }
    } else {
      return ErrorAt(word, "unknown modifier '" + word.text + "'");
    }
  }
  return Status::Ok();
}

}  // namespace artemis
