// Tokens of the ARTEMIS property specification language (Figure 5 syntax).
#ifndef SRC_SPEC_TOKEN_H_
#define SRC_SPEC_TOKEN_H_

#include <cstdint>
#include <string>

#include "src/base/time.h"

namespace artemis {

enum class TokenKind : std::uint8_t {
  kIdentifier,  // micSense, maxTries, restartPath, ...
  kNumber,      // 10, 36.5
  kDuration,    // 5min, 100ms, 2s  (number immediately followed by a unit)
  kPower,       // 9mW, 0.5W       (used by the app-description language)
  kColon,
  kSemicolon,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kLParen,   // Used by the Mayfly-style frontend.
  kRParen,
  kArrow,    // "->", the Mayfly-style dataflow edge.
  kComma,
  kEndOfInput,
  kError,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEndOfInput;
  std::string text;          // Raw spelling.
  double number = 0.0;       // For kNumber.
  SimDuration duration = 0;  // For kDuration, in microsecond ticks.
  Milliwatts power = 0.0;    // For kPower.
  int line = 0;
  int column = 0;

  std::string Describe() const;
};

}  // namespace artemis

#endif  // SRC_SPEC_TOKEN_H_
