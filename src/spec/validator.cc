#include "src/spec/validator.h"

#include <algorithm>

namespace artemis {
namespace {

Status ErrorAt(int line, const std::string& message) {
  return Status::Invalid("line " + std::to_string(line) + ": " + message);
}

bool NeedsDpTask(PropertyKind kind) {
  return kind == PropertyKind::kMitd || kind == PropertyKind::kCollect;
}

bool IsTimeProperty(PropertyKind kind) {
  return kind == PropertyKind::kMitd || kind == PropertyKind::kPeriod;
}

// True when `dep` appears before `task` in some path, or completes in an
// earlier path than one containing `task`.
bool DependencyReachable(const AppGraph& graph, TaskId dep, TaskId task) {
  for (PathId p = 1; p <= graph.path_count(); ++p) {
    const auto& path = graph.path(p);
    const auto dep_it = std::find(path.begin(), path.end(), dep);
    const auto task_it = std::find(path.begin(), path.end(), task);
    if (dep_it != path.end() && task_it != path.end() && dep_it < task_it) {
      return true;
    }
  }
  // Earlier-path completion also satisfies the dependency.
  const std::vector<PathId> dep_paths = graph.PathsContaining(dep);
  const std::vector<PathId> task_paths = graph.PathsContaining(task);
  for (const PathId dp : dep_paths) {
    for (const PathId tp : task_paths) {
      if (dp < tp) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

ValidationResult SpecValidator::Validate(const SpecAst& spec, const AppGraph& graph) {
  ValidationResult result;

  for (const TaskBlockAst& block : spec.blocks) {
    const std::optional<TaskId> task = graph.FindTask(block.task);
    if (!task.has_value()) {
      result.status = ErrorAt(block.line, "unknown task '" + block.task + "'");
      return result;
    }
    if (graph.PathsContaining(*task).empty()) {
      result.warnings.push_back("task '" + block.task + "' is not on any path");
    }

    for (const PropertyAst& p : block.properties) {
      const std::string label = p.Label(block.task);

      // dpTask.
      if (NeedsDpTask(p.kind)) {
        if (p.dp_task.empty()) {
          result.status = ErrorAt(p.line, label + " requires dpTask");
          return result;
        }
        const std::optional<TaskId> dep = graph.FindTask(p.dp_task);
        if (!dep.has_value()) {
          result.status = ErrorAt(p.line, label + ": unknown dpTask '" + p.dp_task + "'");
          return result;
        }
        if (!DependencyReachable(graph, *dep, *task)) {
          result.warnings.push_back(label + ": dependency task '" + p.dp_task +
                                    "' never completes before '" + block.task +
                                    "' on any path order");
        }
      } else if (!p.dp_task.empty()) {
        result.status = ErrorAt(p.line, label + " does not take dpTask");
        return result;
      }

      // onFail.
      if (!p.has_on_fail) {
        result.status = ErrorAt(p.line, label + " is missing onFail");
        return result;
      }
      if (p.max_attempt != 0 && !p.has_max_attempt_action) {
        result.status =
            ErrorAt(p.line, label + ": maxAttempt requires a second onFail action");
        return result;
      }
      if (p.max_attempt != 0 && !IsTimeProperty(p.kind)) {
        result.warnings.push_back(label +
                                  ": maxAttempt is meant for time-related properties "
                                  "(MITD, period)");
      }

      // Path: must contain the anchor task (scope + target) or, for
      // dependency properties, the dpTask (cross-path restart target).
      if (p.path != kNoPath) {
        if (p.path > graph.path_count()) {
          result.status = ErrorAt(p.line, label + ": no path #" + std::to_string(p.path));
          return result;
        }
        const auto& path = graph.path(p.path);
        const bool has_anchor = std::find(path.begin(), path.end(), *task) != path.end();
        bool has_dep = false;
        if (!p.dp_task.empty()) {
          const std::optional<TaskId> dep = graph.FindTask(p.dp_task);
          has_dep = dep.has_value() &&
                    std::find(path.begin(), path.end(), *dep) != path.end();
        }
        if (!has_anchor && !has_dep) {
          result.status = ErrorAt(
              p.line, label + ": path #" + std::to_string(p.path) + " contains neither '" +
                          block.task + "' nor its dependency");
          return result;
        }
      }

      // Per-kind value checks.
      switch (p.kind) {
        case PropertyKind::kMaxTries:
        case PropertyKind::kCollect:
          if (p.count == 0) {
            result.status = ErrorAt(p.line, label + ": count must be positive");
            return result;
          }
          break;
        case PropertyKind::kMaxDuration:
          if (p.duration == 0) {
            result.status = ErrorAt(p.line, label + ": duration must be positive");
            return result;
          }
          if (graph.task(*task).work.duration > p.duration) {
            result.warnings.push_back(label +
                                      ": limit is below the task's modelled work time; the "
                                      "property can never be satisfied");
          }
          break;
        case PropertyKind::kMitd:
        case PropertyKind::kPeriod:
          if (p.duration == 0) {
            result.status = ErrorAt(p.line, label + ": duration must be positive");
            return result;
          }
          break;
        case PropertyKind::kDpData: {
          if (!p.has_range) {
            result.status = ErrorAt(p.line, label + " requires Range");
            return result;
          }
          if (p.range_lo > p.range_hi) {
            result.status = ErrorAt(p.line, label + ": Range lower bound exceeds upper bound");
            return result;
          }
          const auto& var = graph.task(*task).monitored_var;
          if (!var.has_value()) {
            result.status = ErrorAt(
                p.line, label + ": task '" + block.task + "' declares no monitored variable");
            return result;
          }
          if (*var != p.dp_data_var) {
            result.status =
                ErrorAt(p.line, label + ": task monitors '" + *var + "', not '" +
                                    p.dp_data_var + "'");
            return result;
          }
          break;
        }
        case PropertyKind::kMinEnergy:
          if (p.min_energy <= 0.0 || p.min_energy > 1.0) {
            result.status = ErrorAt(p.line, label + ": energy fraction must be in (0, 1]");
            return result;
          }
          break;
      }
    }
  }
  return result;
}

}  // namespace artemis
