#include "src/spec/token.h"

namespace artemis {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kDuration:
      return "duration";
    case TokenKind::kPower:
      return "power";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kEndOfInput:
      return "end of input";
    case TokenKind::kError:
      return "error";
  }
  return "?";
}

std::string Token::Describe() const {
  std::string out = TokenKindName(kind);
  if (kind == TokenKind::kIdentifier || kind == TokenKind::kNumber ||
      kind == TokenKind::kDuration || kind == TokenKind::kPower ||
      kind == TokenKind::kError) {
    out += " '" + text + "'";
  }
  return out;
}

}  // namespace artemis
