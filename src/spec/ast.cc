#include "src/spec/ast.h"

#include <sstream>

#include "src/base/units.h"

namespace artemis {

const char* PropertyKindName(PropertyKind kind) {
  switch (kind) {
    case PropertyKind::kMaxTries:
      return "maxTries";
    case PropertyKind::kMaxDuration:
      return "maxDuration";
    case PropertyKind::kMitd:
      return "MITD";
    case PropertyKind::kCollect:
      return "collect";
    case PropertyKind::kDpData:
      return "dpData";
    case PropertyKind::kPeriod:
      return "period";
    case PropertyKind::kMinEnergy:
      return "minEnergy";
  }
  return "?";
}

std::string PropertyAst::Label(const std::string& task_name) const {
  std::string label = PropertyKindName(kind);
  label += '(';
  label += task_name;
  if (!dp_task.empty()) {
    label += "<-" + dp_task;
  }
  label += ')';
  return label;
}

std::size_t SpecAst::PropertyCount() const {
  std::size_t n = 0;
  for (const TaskBlockAst& block : blocks) {
    n += block.properties.size();
  }
  return n;
}

bool ParseActionName(const std::string& name, ActionType* out) {
  if (name == "restartPath") {
    *out = ActionType::kRestartPath;
  } else if (name == "skipPath") {
    *out = ActionType::kSkipPath;
  } else if (name == "restartTask") {
    *out = ActionType::kRestartTask;
  } else if (name == "skipTask") {
    *out = ActionType::kSkipTask;
  } else if (name == "completePath") {
    *out = ActionType::kCompletePath;
  } else {
    *out = ActionType::kNone;
    return false;
  }
  return true;
}

namespace {

void PrettyProperty(std::ostringstream& out, const PropertyAst& p) {
  out << "  " << PropertyKindName(p.kind) << ": ";
  switch (p.kind) {
    case PropertyKind::kMaxTries:
    case PropertyKind::kCollect:
      out << p.count;
      break;
    case PropertyKind::kMaxDuration:
    case PropertyKind::kMitd:
    case PropertyKind::kPeriod:
      out << DurationLiteral(p.duration);
      break;
    case PropertyKind::kDpData:
      out << p.dp_data_var;
      break;
    case PropertyKind::kMinEnergy:
      out << p.min_energy;
      break;
  }
  if (!p.dp_task.empty()) {
    out << " dpTask: " << p.dp_task;
  }
  if (p.has_range) {
    out << " Range: [" << p.range_lo << ", " << p.range_hi << ']';
  }
  if (p.jitter != 0) {
    out << " jitter: " << DurationLiteral(p.jitter);
  }
  if (p.has_on_fail) {
    out << " onFail: " << ActionTypeName(p.on_fail);
  }
  if (p.max_attempt != 0) {
    out << " maxAttempt: " << p.max_attempt;
    if (p.has_max_attempt_action) {
      out << " onFail: " << ActionTypeName(p.max_attempt_action);
    }
  }
  if (p.path != kNoPath) {
    out << " Path: " << p.path;
  }
  out << ";\n";
}

}  // namespace

std::string SpecAst::Pretty() const {
  std::ostringstream out;
  for (const TaskBlockAst& block : blocks) {
    out << block.task << ": {\n";
    for (const PropertyAst& p : block.properties) {
      PrettyProperty(out, p);
    }
    out << "}\n\n";
  }
  if (!migration.empty()) {
    out << "migrate {\n";
    for (const MigrationRuleAst& rule : migration.rules) {
      switch (rule.kind) {
        case MigrationRuleAst::Kind::kMachine:
          out << "  machine " << rule.from << " -> " << rule.to << ";\n";
          break;
        case MigrationRuleAst::Kind::kState:
          out << "  state " << rule.machine << ": " << rule.from << " -> " << rule.to << ";\n";
          break;
        case MigrationRuleAst::Kind::kSlot:
          out << "  slot " << rule.machine << ": " << rule.from << " -> " << rule.to << ";\n";
          break;
      }
    }
    out << "}\n\n";
  }
  return out.str();
}

}  // namespace artemis
