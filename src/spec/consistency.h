// Time-aware consistency analysis of property specifications — the
// Section 7 "Property Consistency Checking" future-work item.
//
// "Inconsistency means that there is no sequence of task executions that
// satisfies all constraints." Rather than full model checking, this analysis
// evaluates each property against the application's *modelled* best-case
// timing (task work durations, path structure) and flags:
//   * kUnsatisfiable — no failure-free execution can satisfy the property
//     (e.g. a maxDuration below the task's own work time, an MITD below the
//     unavoidable delay between producer and consumer on the path);
//   * kConflict — two properties that cannot both hold (e.g. a period
//     shorter than a dependency's MITD forces, or collect counts that
//     exceed what the producing path can deliver per consumer activation
//     under the property's own restart action);
//   * kRisky — satisfiable only without any power failure (no slack).
#ifndef SRC_SPEC_CONSISTENCY_H_
#define SRC_SPEC_CONSISTENCY_H_

#include <string>
#include <vector>

#include "src/kernel/app_graph.h"
#include "src/spec/ast.h"

namespace artemis {

enum class ConsistencySeverity { kUnsatisfiable, kConflict, kRisky };

const char* ConsistencySeverityName(ConsistencySeverity severity);

struct ConsistencyFinding {
  ConsistencySeverity severity;
  std::string property;  // label of the offending property
  std::string message;
};

class ConsistencyChecker {
 public:
  // Analyses a parsed (and name-valid) spec against the graph's modelled
  // task timings. Returns findings ordered by severity.
  static std::vector<ConsistencyFinding> Analyze(const SpecAst& spec, const AppGraph& graph);

  // Convenience: true when no kUnsatisfiable/kConflict findings exist.
  static bool IsConsistent(const SpecAst& spec, const AppGraph& graph);
};

// Best-case delay between the completion of `from` and the next start of
// `to` along `path` (sum of intervening task work), or nullopt when the
// order never occurs on that path. Exposed for tests.
std::optional<SimDuration> BestCaseInterTaskDelay(const AppGraph& graph, PathId path,
                                                  TaskId from, TaskId to);

// Best-case duration of one full traversal of `path` (sum of task work).
SimDuration BestCasePathTime(const AppGraph& graph, PathId path);

// ETAP-style static energy feasibility (Table 3's compile-time comparator
// class): given the per-on-period energy budget of the target device,
// reports tasks whose single execution cannot fit one on-period — the
// static signature of the non-termination ARTEMIS catches at runtime with
// maxTries. `budget_uj` is the usable energy per charge cycle; `idle_power`
// is the MCU's active draw used for the kernel's boundary overhead.
struct EnergyFeasibilityFinding {
  TaskId task = kInvalidTask;
  std::string task_name;
  EnergyUj per_attempt = 0.0;  // Energy one execution attempt needs.
  EnergyUj budget = 0.0;
  bool feasible = true;
};

std::vector<EnergyFeasibilityFinding> AnalyzeEnergyFeasibility(const AppGraph& graph,
                                                               EnergyUj budget_uj);

}  // namespace artemis

#endif  // SRC_SPEC_CONSISTENCY_H_
