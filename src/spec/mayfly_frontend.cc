#include "src/spec/mayfly_frontend.h"

#include <map>
#include <vector>

#include "src/spec/lexer.h"

namespace artemis {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SpecAst> Run() {
    // Gather properties per consuming task, then emit one block per task in
    // first-appearance order.
    std::vector<std::string> task_order;
    std::map<std::string, TaskBlockAst> blocks;

    while (!Check(TokenKind::kEndOfInput)) {
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAt(Peek(), "expected 'expires' or 'collect'");
      }
      const Token keyword = Advance();
      PropertyAst property;
      property.line = keyword.line;
      property.column = keyword.column;
      if (keyword.text == "expires") {
        property.kind = PropertyKind::kMitd;
      } else if (keyword.text == "collect") {
        property.kind = PropertyKind::kCollect;
      } else {
        return ErrorAt(keyword, "unknown construct '" + keyword.text + "'");
      }
      // Mayfly's reaction is always a task-graph (path) restart.
      property.on_fail = ActionType::kRestartPath;
      property.has_on_fail = true;

      if (Status status = Expect(TokenKind::kLParen); !status.ok()) {
        return status;
      }
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAt(Peek(), "expected the producing task");
      }
      property.dp_task = Advance().text;
      if (Status status = Expect(TokenKind::kArrow); !status.ok()) {
        return status;
      }
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAt(Peek(), "expected the consuming task");
      }
      const std::string consumer = Advance().text;
      if (Status status = Expect(TokenKind::kComma); !status.ok()) {
        return status;
      }
      if (property.kind == PropertyKind::kMitd) {
        if (Check(TokenKind::kDuration)) {
          property.duration = Advance().duration;
        } else if (Check(TokenKind::kNumber)) {
          property.duration = static_cast<SimDuration>(Advance().number *
                                                       static_cast<double>(kMillisecond));
        } else {
          return ErrorAt(Peek(), "expected an expiration window");
        }
      } else {
        if (!Check(TokenKind::kNumber)) {
          return ErrorAt(Peek(), "expected a sample count");
        }
        property.count = static_cast<std::uint64_t>(Advance().number);
      }
      if (Status status = Expect(TokenKind::kRParen); !status.ok()) {
        return status;
      }
      // Optional: "path N".
      if (Check(TokenKind::kIdentifier) && Peek().text == "path") {
        Advance();
        if (!Check(TokenKind::kNumber)) {
          return ErrorAt(Peek(), "expected a path number");
        }
        property.path = static_cast<PathId>(Advance().number);
      }
      if (Status status = Expect(TokenKind::kSemicolon); !status.ok()) {
        return status;
      }

      if (blocks.find(consumer) == blocks.end()) {
        task_order.push_back(consumer);
        blocks[consumer].task = consumer;
        blocks[consumer].line = keyword.line;
        blocks[consumer].column = keyword.column;
      }
      blocks[consumer].properties.push_back(std::move(property));
    }

    SpecAst spec;
    for (const std::string& task : task_order) {
      spec.blocks.push_back(std::move(blocks[task]));
    }
    return spec;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  Status Expect(TokenKind kind) {
    if (Check(kind)) {
      Advance();
      return Status::Ok();
    }
    return ErrorAt(Peek(), std::string("expected ") + TokenKindName(kind) + ", found " +
                               Peek().Describe());
  }
  Status ErrorAt(const Token& token, const std::string& message) const {
    return Status::Invalid("line " + std::to_string(token.line) + ":" +
                           std::to_string(token.column) + ": " + message);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<SpecAst> MayflyFrontend::Parse(std::string_view source) {
  std::vector<Token> tokens = Lexer(source).Tokenize();
  if (!tokens.empty() && tokens.back().kind == TokenKind::kError) {
    const Token& bad = tokens.back();
    return Status::Invalid("lex error at line " + std::to_string(bad.line) + ": unexpected '" +
                           bad.text + "'");
  }
  return Parser(std::move(tokens)).Run();
}

}  // namespace artemis
