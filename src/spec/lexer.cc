#include "src/spec/lexer.h"

#include <cctype>

#include "src/base/units.h"

namespace artemis {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

Lexer::Lexer(std::string_view source) : source_(source) {}

char Lexer::Peek(int ahead) const {
  const std::size_t at = pos_ + static_cast<std::size_t>(ahead);
  return at < source_.size() ? source_[at] : '\0';
}

char Lexer::Advance() {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    const char c = Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      Advance();
    } else if (c == '#' || (c == '/' && Peek(1) == '/')) {
      while (!AtEnd() && Peek() != '\n') {
        Advance();
      }
    } else if (c == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) {
        Advance();
      }
      if (!AtEnd()) {
        Advance();
        Advance();
      }
    } else {
      break;
    }
  }
}

Token Lexer::Make(TokenKind kind, std::string text) const {
  Token token;
  token.kind = kind;
  token.text = std::move(text);
  token.line = token_line_;
  token.column = token_column_;
  return token;
}

Token Lexer::Next() {
  SkipWhitespaceAndComments();
  token_line_ = line_;
  token_column_ = column_;
  if (AtEnd()) {
    return Make(TokenKind::kEndOfInput, "");
  }
  const char c = Advance();
  switch (c) {
    case ':':
      return Make(TokenKind::kColon, ":");
    case ';':
      return Make(TokenKind::kSemicolon, ";");
    case '{':
      return Make(TokenKind::kLBrace, "{");
    case '}':
      return Make(TokenKind::kRBrace, "}");
    case '[':
      return Make(TokenKind::kLBracket, "[");
    case ']':
      return Make(TokenKind::kRBracket, "]");
    case '(':
      return Make(TokenKind::kLParen, "(");
    case ')':
      return Make(TokenKind::kRParen, ")");
    case ',':
      return Make(TokenKind::kComma, ",");
    case '-':
      if (Peek() == '>') {
        Advance();
        return Make(TokenKind::kArrow, "->");
      }
      break;  // Falls through to the number path ("-3").
    default:
      break;
  }

  if (IsIdentStart(c)) {
    std::string text(1, c);
    while (!AtEnd() && IsIdentChar(Peek())) {
      text += Advance();
    }
    return Make(TokenKind::kIdentifier, std::move(text));
  }

  if (IsDigit(c) || (c == '-' && IsDigit(Peek()))) {
    std::string text(1, c);
    bool seen_dot = false;
    while (!AtEnd() && (IsDigit(Peek()) || (Peek() == '.' && !seen_dot))) {
      seen_dot = seen_dot || Peek() == '.';
      text += Advance();
    }
    // A unit suffix glued to the number makes it a duration or power
    // literal.
    if (!AtEnd() && IsIdentStart(Peek())) {
      std::string unit;
      while (!AtEnd() && IsIdentChar(Peek())) {
        unit += Advance();
      }
      if (const std::optional<SimDuration> d = ParseDuration(text + unit); d.has_value()) {
        Token token = Make(TokenKind::kDuration, text + unit);
        token.duration = *d;
        return token;
      }
      if (const std::optional<Milliwatts> p = ParsePower(text + unit); p.has_value()) {
        Token token = Make(TokenKind::kPower, text + unit);
        token.power = *p;
        return token;
      }
      return Make(TokenKind::kError, text + unit);
    }
    Token token = Make(TokenKind::kNumber, text);
    token.number = std::stod(text);
    return token;
  }

  return Make(TokenKind::kError, std::string(1, c));
}

std::vector<Token> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    Token token = Next();
    const bool stop =
        token.kind == TokenKind::kEndOfInput || token.kind == TokenKind::kError;
    tokens.push_back(std::move(token));
    if (stop) {
      break;
    }
  }
  return tokens;
}

}  // namespace artemis
