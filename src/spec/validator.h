// Semantic validation of a parsed property specification against the
// application graph, plus consistency lint warnings (Section 7 "Property
// Consistency Checking" sketches the full analysis; we implement the
// structural subset).
#ifndef SRC_SPEC_VALIDATOR_H_
#define SRC_SPEC_VALIDATOR_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/kernel/app_graph.h"
#include "src/spec/ast.h"

namespace artemis {

struct ValidationResult {
  Status status;                       // First hard error, or OK.
  std::vector<std::string> warnings;   // Non-fatal consistency lint.

  bool ok() const { return status.ok(); }
};

class SpecValidator {
 public:
  // Checks:
  //  * every task block names a task in the graph
  //  * dpTask present and resolvable for MITD/collect; absent elsewhere
  //  * Path references an existing path that contains the task
  //  * Range present (and lo <= hi) for dpData; dpData names the task's
  //    monitored variable
  //  * every property carries an onFail action; maxAttempt carries a second
  //  * positive durations/counts, minEnergy in (0, 1]
  // Warnings:
  //  * maxAttempt on non-time properties (Table 1 scopes it to MITD/period)
  //  * a task block for a task that is on no path
  //  * a maxDuration shorter than the task's modelled work duration
  //  * MITD/collect where the dependency task never precedes the dependent
  //    task on any shared/earlier path
  static ValidationResult Validate(const SpecAst& spec, const AppGraph& graph);
};

}  // namespace artemis

#endif  // SRC_SPEC_VALIDATOR_H_
