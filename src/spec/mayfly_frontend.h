// An alternative property-specification frontend in Mayfly's idiom,
// demonstrating the Section 7 "Support for Other Languages" claim: multiple
// surface languages can target the common AST (and therefore the common
// intermediate language and monitor generation) through small translators.
//
// Surface syntax (dataflow-edge annotations, Mayfly-style):
//
//   expires(accel -> send, 5min) path 2;   // data freshness on an edge
//   collect(bodyTemp -> calcAvg, 10);      // sample count on an edge
//
// Both constructs translate to ARTEMIS properties on the *consuming* task:
// expires -> MITD, collect -> collect, each with Mayfly's fixed reaction
// (restartPath). Everything downstream — validation, lowering, monitor
// generation, the runtime — is shared with the native frontend.
#ifndef SRC_SPEC_MAYFLY_FRONTEND_H_
#define SRC_SPEC_MAYFLY_FRONTEND_H_

#include <string_view>

#include "src/base/status.h"
#include "src/spec/ast.h"

namespace artemis {

class MayflyFrontend {
 public:
  // Parses Mayfly-style source into the common SpecAst. Diagnostics carry
  // line/column positions.
  static StatusOr<SpecAst> Parse(std::string_view source);
};

}  // namespace artemis

#endif  // SRC_SPEC_MAYFLY_FRONTEND_H_
