// Recursive-descent parser for the ARTEMIS property specification language.
//
// Grammar (Figure 5 surface syntax, plus the hot-swap migrate block from
// docs/hotswap.md):
//   spec     := (block | migrate)*
//   block    := IDENT ':'? '{' property* '}'
//   migrate  := 'migrate' '{' rule* '}'     // 'migrate' is reserved at the
//                                            // top level (not as task name)
//   rule     := 'machine' IDENT '->' IDENT ';'
//             | 'state' IDENT ':' IDENT '->' IDENT ';'
//             | 'slot'  IDENT ':' IDENT '->' IDENT ';'
//   property := key ':' value modifier* ';'
//   key      := maxTries | maxDuration | MITD | collect | dpData | period
//             | minEnergy
//   modifier := 'dpTask' ':' IDENT
//             | 'onFail' ':' action          // 1st binds the property,
//                                            // a 2nd after maxAttempt binds
//                                            // the attempt-exhausted case
//             | 'maxAttempt' ':' NUMBER
//             | 'Path' ':' NUMBER
//             | 'Range' ':' '[' NUMBER ',' NUMBER ']'
//             | 'jitter' ':' DURATION
#ifndef SRC_SPEC_PARSER_H_
#define SRC_SPEC_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/spec/ast.h"
#include "src/spec/token.h"

namespace artemis {

class SpecParser {
 public:
  // Parses a whole specification; the returned status carries the first
  // syntax error with line/column info.
  static StatusOr<SpecAst> Parse(std::string_view source);

 private:
  explicit SpecParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SpecAst> ParseSpec();
  Status ParseBlock(SpecAst* spec);
  Status ParseMigrate(SpecAst* spec);
  Status ParseProperty(TaskBlockAst* block);
  Status ParseModifiers(PropertyAst* property);

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind);
  Status Expect(TokenKind kind, const std::string& context);
  Status ErrorAt(const Token& token, const std::string& message) const;

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace artemis

#endif  // SRC_SPEC_PARSER_H_
