#include "src/spec/consistency.h"

#include <algorithm>

#include "src/base/units.h"
#include "src/sim/cost_model.h"

namespace artemis {
namespace {

// Minimal per-boundary bookkeeping the runtime adds around each task, used
// to decide how much slack "risky" properties have. Kept deliberately
// smaller than any real cost model so the analysis never reports false
// unsatisfiability.
constexpr SimDuration kBoundarySlack = kMillisecond;

void Add(std::vector<ConsistencyFinding>* findings, ConsistencySeverity severity,
         const std::string& property, std::string message) {
  findings->push_back(ConsistencyFinding{severity, property, std::move(message)});
}

}  // namespace

const char* ConsistencySeverityName(ConsistencySeverity severity) {
  switch (severity) {
    case ConsistencySeverity::kUnsatisfiable:
      return "UNSATISFIABLE";
    case ConsistencySeverity::kConflict:
      return "CONFLICT";
    case ConsistencySeverity::kRisky:
      return "RISKY";
  }
  return "?";
}

std::optional<SimDuration> BestCaseInterTaskDelay(const AppGraph& graph, PathId path,
                                                  TaskId from, TaskId to) {
  const auto& tasks = graph.path(path);
  const auto from_it = std::find(tasks.begin(), tasks.end(), from);
  const auto to_it = std::find(tasks.begin(), tasks.end(), to);
  if (from_it == tasks.end() || to_it == tasks.end() || from_it >= to_it) {
    return std::nullopt;
  }
  SimDuration delay = 0;
  for (auto it = from_it + 1; it != to_it; ++it) {
    delay += graph.task(*it).work.duration + kBoundarySlack;
  }
  return delay + kBoundarySlack;
}

SimDuration BestCasePathTime(const AppGraph& graph, PathId path) {
  SimDuration total = 0;
  for (const TaskId task : graph.path(path)) {
    total += graph.task(task).work.duration + kBoundarySlack;
  }
  return total;
}

std::vector<ConsistencyFinding> ConsistencyChecker::Analyze(const SpecAst& spec,
                                                            const AppGraph& graph) {
  std::vector<ConsistencyFinding> findings;

  for (const TaskBlockAst& block : spec.blocks) {
    const std::optional<TaskId> anchor = graph.FindTask(block.task);
    if (!anchor.has_value()) {
      continue;  // Name errors are the validator's job.
    }
    const SimDuration work = graph.task(*anchor).work.duration;

    for (const PropertyAst& p : block.properties) {
      const std::string label = p.Label(block.task);
      switch (p.kind) {
        case PropertyKind::kMaxDuration: {
          if (p.duration < work) {
            Add(&findings, ConsistencySeverity::kUnsatisfiable, label,
                "limit " + DurationLiteral(p.duration) + " is below the task's own work time " +
                    DurationLiteral(work) + "; even a failure-free execution violates it");
          } else if (p.duration < work + 2 * kBoundarySlack) {
            Add(&findings, ConsistencySeverity::kRisky, label,
                "limit leaves no slack over the task's work time; any power failure "
                "during the task violates it");
          }
          break;
        }
        case PropertyKind::kMitd: {
          const std::optional<TaskId> dep = graph.FindTask(p.dp_task);
          if (!dep.has_value()) {
            break;
          }
          // Evaluate on the property's scoped path, or on every shared path.
          std::vector<PathId> paths;
          if (p.path != kNoPath) {
            paths.push_back(p.path);
          } else {
            for (const PathId candidate : graph.PathsContaining(*anchor)) {
              paths.push_back(candidate);
            }
          }
          bool satisfiable_somewhere = false;
          for (const PathId path : paths) {
            const std::optional<SimDuration> delay =
                BestCaseInterTaskDelay(graph, path, *dep, *anchor);
            if (!delay.has_value()) {
              continue;
            }
            if (*delay <= p.duration) {
              satisfiable_somewhere = true;
            } else {
              Add(&findings, ConsistencySeverity::kUnsatisfiable, label,
                  "on path #" + std::to_string(path) + " the tasks between '" + p.dp_task +
                      "' and '" + block.task + "' alone take " + DurationLiteral(*delay) +
                      ", beyond the " + DurationLiteral(p.duration) + " window");
            }
          }
          (void)satisfiable_somewhere;
          break;
        }
        case PropertyKind::kPeriod: {
          // The task can recur no faster than one traversal of its shortest
          // containing path.
          const std::vector<PathId> paths = graph.PathsContaining(*anchor);
          if (paths.empty()) {
            break;
          }
          SimDuration best = BestCasePathTime(graph, paths.front());
          for (const PathId path : paths) {
            best = std::min(best, BestCasePathTime(graph, path));
          }
          if (p.duration + p.jitter < best) {
            Add(&findings, ConsistencySeverity::kUnsatisfiable, label,
                "period+jitter " + DurationLiteral(p.duration + p.jitter) +
                    " is shorter than the best-case recurrence " + DurationLiteral(best) +
                    " of the task's shortest path");
          }
          break;
        }
        case PropertyKind::kCollect:
          // The Figure 7 literal semantics (reset-on-fail) can never
          // converge when each path iteration delivers fewer samples than
          // the requirement: every restart clears the progress.
          // Accumulating semantics (our default) always converge, so only a
          // conflict with an explicit reset would matter; the lowering
          // option is not visible in the AST, so flag the structural risk.
          if (p.count > 1 && p.on_fail == ActionType::kRestartPath) {
            const std::optional<TaskId> dep = graph.FindTask(p.dp_task);
            if (dep.has_value()) {
              Add(&findings, ConsistencySeverity::kRisky, label,
                  "requires " + std::to_string(p.count) +
                      " samples per activation; under reset-on-fail collect semantics "
                      "(Figure 7 literal) a path restart clears progress and the "
                      "property can never be met — accumulate semantics required");
            }
          }
          break;
        case PropertyKind::kMaxTries:
        case PropertyKind::kDpData:
        case PropertyKind::kMinEnergy:
          break;
      }
    }

    // Cross-property conflicts within one block: a maxDuration tighter than
    // an MITD window forces skipping before the MITD can ever be re-checked
    // is fine; the actionable conflict is period vs maxDuration.
    const PropertyAst* period = nullptr;
    const PropertyAst* max_duration = nullptr;
    for (const PropertyAst& p : block.properties) {
      if (p.kind == PropertyKind::kPeriod) {
        period = &p;
      }
      if (p.kind == PropertyKind::kMaxDuration) {
        max_duration = &p;
      }
    }
    if (period != nullptr && max_duration != nullptr &&
        max_duration->duration > period->duration + period->jitter) {
      Add(&findings, ConsistencySeverity::kConflict, period->Label(block.task),
          "the task may legally run for " + DurationLiteral(max_duration->duration) +
              " (maxDuration) which alone exceeds its period bound " +
              DurationLiteral(period->duration + period->jitter) +
              "; both properties cannot hold for consecutive executions");
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const ConsistencyFinding& a, const ConsistencyFinding& b) {
                     return static_cast<int>(a.severity) < static_cast<int>(b.severity);
                   });
  return findings;
}

std::vector<EnergyFeasibilityFinding> AnalyzeEnergyFeasibility(const AppGraph& graph,
                                                               EnergyUj budget_uj) {
  std::vector<EnergyFeasibilityFinding> findings;
  // Fixed costs an attempt pays besides the task body: the boot restore plus
  // the boundary/event bookkeeping (see sim/cost_model.h). Approximated with
  // the default model; a feasible verdict with < 5% headroom would still be
  // fragile, which the caller can see from the per_attempt/budget ratio.
  const CostModel& costs = DefaultCostModel();
  const EnergyUj overhead =
      EnergyFor(costs.mcu_active_power,
                costs.CyclesToTime(costs.reboot_restore_cycles + costs.kernel_boundary_cycles +
                                   costs.event_build_cycles + costs.monitor_call_cycles));
  for (TaskId task = 0; task < graph.task_count(); ++task) {
    const TaskDef& def = graph.task(task);
    EnergyFeasibilityFinding finding;
    finding.task = task;
    finding.task_name = def.name;
    finding.per_attempt = EnergyFor(def.work.power, def.work.duration) + overhead;
    finding.budget = budget_uj;
    finding.feasible = finding.per_attempt <= budget_uj;
    findings.push_back(std::move(finding));
  }
  return findings;
}

bool ConsistencyChecker::IsConsistent(const SpecAst& spec, const AppGraph& graph) {
  for (const ConsistencyFinding& finding : Analyze(spec, graph)) {
    if (finding.severity != ConsistencySeverity::kRisky) {
      return false;
    }
  }
  return true;
}

}  // namespace artemis
