// Chain-style channels: committed inter-task data with transactional
// task-scope staging.
//
// Task effects never mutate committed state directly. They stage operations
// (push a sample, consume a task's samples, set the monitored variable)
// against a TaskContext; the kernel applies the staged operations atomically
// at the task's commit point. A power failure before commit discards the
// staging, which is what makes task re-execution idempotent.
#ifndef SRC_KERNEL_CHANNEL_H_
#define SRC_KERNEL_CHANNEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/kernel/task.h"

namespace artemis {

class AppGraph;

// Committed per-task output data, kept in non-volatile memory.
class ChannelStore {
 public:
  explicit ChannelStore(std::size_t task_count) : slots_(task_count) {}

  const std::vector<double>& Samples(TaskId task) const { return slots_[task].samples; }
  std::uint64_t CompletionCount(TaskId task) const { return slots_[task].completions; }
  std::optional<SimTime> LastCompletion(TaskId task) const {
    return slots_[task].completions > 0 ? std::optional<SimTime>(slots_[task].last_completion)
                                        : std::nullopt;
  }
  std::optional<double> MonitoredValue(TaskId task) const { return slots_[task].monitored; }

  // Commit-time mutations (invoked by the kernel, never by task bodies).
  void AppendSamples(TaskId task, const std::vector<double>& values);
  void ClearSamples(TaskId task) { slots_[task].samples.clear(); }
  void RecordCompletion(TaskId task, SimTime when);
  void SetMonitored(TaskId task, double value) { slots_[task].monitored = value; }

  // Bytes of committed data (for memory accounting).
  std::size_t FootprintBytes() const;

  void Reset();

 private:
  struct Slot {
    std::vector<double> samples;
    std::uint64_t completions = 0;
    SimTime last_completion = 0;
    std::optional<double> monitored;
  };
  std::vector<Slot> slots_;
};

// The view a task body gets while executing: committed reads, staged writes.
class TaskContext {
 public:
  TaskContext(const AppGraph* graph, const ChannelStore* store, TaskId self, SimTime now,
              Rng* rng);

  TaskId self() const { return self_; }
  SimTime now() const { return now_; }
  Rng& rng() { return *rng_; }

  // --- committed reads --------------------------------------------------
  // Samples previously committed by the named task (empty if unknown task).
  const std::vector<double>& SamplesOf(const std::string& task_name) const;
  std::uint64_t CompletionsOf(const std::string& task_name) const;

  // --- staged writes (applied atomically at commit) ----------------------
  // Appends one output sample of this task.
  void Push(double value) { pushed_.push_back(value); }
  // Consumes (clears) all committed samples of the named task at commit.
  void ConsumeAll(const std::string& task_name);
  // Sets this task's monitored dependent variable (dpData source).
  void SetMonitored(double value) { monitored_ = value; }

  // Kernel access to the staging area.
  const std::vector<double>& staged_samples() const { return pushed_; }
  const std::vector<TaskId>& staged_consumes() const { return consumes_; }
  std::optional<double> staged_monitored() const { return monitored_; }

 private:
  const AppGraph* graph_;
  const ChannelStore* store_;
  TaskId self_;
  SimTime now_;
  Rng* rng_;

  std::vector<double> pushed_;
  std::vector<TaskId> consumes_;
  std::optional<double> monitored_;

  static const std::vector<double> kEmpty;
};

}  // namespace artemis

#endif  // SRC_KERNEL_CHANNEL_H_
