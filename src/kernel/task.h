// Task model for task-based intermittent programs (Chain / InK / Alpaca
// style): atomic units with all-or-nothing semantics, arranged into paths.
#ifndef SRC_KERNEL_TASK_H_
#define SRC_KERNEL_TASK_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>

#include "src/base/time.h"

namespace artemis {

using TaskId = std::uint32_t;
// Paths are numbered from 1, matching the paper's "Path: 2" syntax.
using PathId = std::uint32_t;

inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();
inline constexpr PathId kNoPath = 0;

// Figure 8/9 task statuses. A task is READY until its execution commits.
enum class TaskStatus : std::uint8_t { kReady = 0, kFinished = 1 };

class TaskContext;  // Defined in channel.h.

// The data-manipulation body of a task; runs exactly once per committed
// execution, at commit time, so re-execution after a power failure is
// idempotent by construction.
using TaskEffect = std::function<void(TaskContext&)>;

struct TaskWork {
  // Compute/peripheral time per execution.
  SimDuration duration = 10 * kMillisecond;
  // Average power draw during that time (MCU + peripheral).
  Milliwatts power = 0.66;
};

struct TaskDef {
  std::string name;
  TaskWork work;
  TaskEffect effect;  // May be empty.
  // Name of the task's monitored dependent variable (the `monitor avgTemp`
  // declaration in Figure 4). When set, EndTask events carry its committed
  // value as dep_data.
  std::optional<std::string> monitored_var;
};

const char* TaskStatusName(TaskStatus status);

}  // namespace artemis

#endif  // SRC_KERNEL_TASK_H_
