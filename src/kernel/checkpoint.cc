#include "src/kernel/checkpoint.h"

namespace artemis {

SimDuration CheckpointProgram::TotalWork() const {
  SimDuration total = 0;
  for (const CodeBlock& block : blocks) {
    total += block.duration;
  }
  return total;
}

CheckpointRunResult RunCheckpointed(const CheckpointProgram& program,
                                    const CheckpointOptions& options, Mcu* mcu) {
  CheckpointRunResult result;
  const SimTime start = mcu->TrueNow();
  const std::uint32_t spacing = options.spacing == 0 ? 1 : options.spacing;

  // FRAM-resident: index of the first block not covered by a snapshot.
  std::size_t resume_at = 0;
  mcu->nvm().Allocate(MemOwner::kRuntime, sizeof(resume_at) + program.snapshot_bytes,
                      "checkpoint-area");

  const double checkpoint_cycles =
      mcu->costs().kernel_boundary_cycles +
      mcu->costs().nvm_commit_cycles_per_byte * static_cast<double>(program.snapshot_bytes);

  while (resume_at < program.blocks.size()) {
    if (mcu->starved()) {
      result.starved = true;
      break;
    }
    if (options.max_wall_time != 0 && mcu->TrueNow() - start > options.max_wall_time) {
      result.timed_out = true;
      break;
    }
    // Replay from the last snapshot. Everything before `resume_at` is
    // durable; everything after the snapshot re-executes on failure.
    std::size_t block = resume_at;
    bool failed = false;
    SimDuration run_since_snapshot = 0;
    while (block < program.blocks.size()) {
      const CodeBlock& code = program.blocks[block];
      const SimDuration app_before = mcu->stats().busy_time[static_cast<int>(CostTag::kApp)];
      const ExecStatus status = mcu->Execute(code.duration, code.power, CostTag::kApp);
      if (status != ExecStatus::kOk) {
        // Lost: the completed-but-unsnapshotted blocks plus the partial
        // execution of the interrupted block, all of which rerun.
        const SimDuration partial =
            mcu->stats().busy_time[static_cast<int>(CostTag::kApp)] - app_before;
        result.reexecuted_work += run_since_snapshot + partial;
        failed = true;
        break;
      }
      run_since_snapshot += code.duration;
      ++block;
      const bool due = (block - resume_at) % spacing == 0 || block == program.blocks.size();
      if (due) {
        const ExecStatus saved = mcu->ExecuteCycles(checkpoint_cycles, CostTag::kRuntime);
        if (saved != ExecStatus::kOk) {
          result.reexecuted_work += run_since_snapshot;
          failed = true;
          break;
        }
        ++result.checkpoints_taken;
        resume_at = block;  // Snapshot commit point.
        run_since_snapshot = 0;
      }
    }
    if (!failed) {
      result.completed = true;
      break;
    }
  }

  result.finished_at = mcu->TrueNow();
  result.stats = mcu->stats();
  return result;
}

CheckpointProgram MakeUniformProgram(std::size_t blocks, SimDuration block_duration,
                                     Milliwatts power, std::size_t snapshot_bytes) {
  CheckpointProgram program;
  program.snapshot_bytes = snapshot_bytes;
  program.blocks.reserve(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    program.blocks.push_back(
        CodeBlock{"block" + std::to_string(i), block_duration, power});
  }
  return program;
}

}  // namespace artemis
