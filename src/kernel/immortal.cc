#include "src/kernel/immortal.h"

namespace artemis {

ImmortalContext::ImmortalContext(NvmArena* nvm, MemOwner owner, const std::string& label) {
  if (nvm != nullptr) {
    nvm->Allocate(owner, sizeof(item_) + sizeof(cursor_) + sizeof(in_progress_), label);
  }
}

std::uint32_t ImmortalContext::Begin(std::uint64_t id) {
  if (in_progress_ && item_ == id) {
    return cursor_;  // Resume the interrupted item.
  }
  item_ = id;
  cursor_ = 0;
  in_progress_ = true;
  return 0;
}

void ImmortalContext::CompleteStep() { ++cursor_; }

void ImmortalContext::Finish() {
  in_progress_ = false;
  cursor_ = 0;
}

}  // namespace artemis
