// Execution trace recording: the machine-readable counterpart of the
// Figure 13 timeline. Benches and examples print it; tests assert on it.
#ifndef SRC_KERNEL_TRACE_H_
#define SRC_KERNEL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/kernel/checker.h"
#include "src/kernel/task.h"
#include "src/obs/event.h"

namespace artemis {

enum class TraceKind : std::uint8_t {
  kBoot,
  kTaskStart,
  kTaskEnd,
  kTaskAborted,   // power failure during the task body
  kViolation,     // a monitor reported a failed property
  kActionApplied, // the runtime executed a corrective action
  kPathStart,
  kPathRestart,
  kPathSkip,
  kPathCompleteUnmonitored,  // completePath tail execution
  kTaskSkipped,
  kAppComplete,
};

const char* TraceKindName(TraceKind kind);

// Maps a kernel trace kind onto the cross-layer observability event kind
// (src/obs/event.h), so bus subscribers and the in-memory trace agree on
// naming. Every TraceKind has a mapping; obs_test asserts the round-trip.
obs::Kind ToObsKind(TraceKind kind);

struct TraceRecord {
  TraceKind kind;
  SimTime time = 0;       // Device-clock timestamp (what monitors see).
  SimTime true_time = 0;  // Omniscient simulation time (for staleness audits).
  TaskId task = kInvalidTask;
  PathId path = kNoPath;
  std::uint32_t attempt = 0;
  ActionType action = ActionType::kNone;
  std::string detail;  // property name or free-form note
};

class ExecutionTrace {
 public:
  void Record(TraceRecord record) { records_.push_back(std::move(record)); }
  const std::vector<TraceRecord>& records() const { return records_; }
  void Clear() { records_.clear(); }

  // Count of records of a given kind (optionally for one task).
  std::size_t Count(TraceKind kind) const;
  std::size_t CountForTask(TraceKind kind, TaskId task) const;

  // Renders the trace with task names resolved through `names` (indexable by
  // TaskId); pass an empty vector to print raw ids.
  std::string ToString(const std::vector<std::string>& names) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace artemis

#endif  // SRC_KERNEL_TRACE_H_
