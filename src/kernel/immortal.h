// Local-continuation support for power-failure-resilient step sequences,
// modelled after the ImmortalThreads library the paper uses to make
// generated monitors intermittently executable (Section 4.2.3).
//
// An ImmortalContext persists a step cursor keyed by a work-item id. A
// client processing N steps for item `id` asks Begin(id, N): if the same
// item was interrupted earlier, the saved cursor is returned and completed
// steps are skipped; otherwise the cursor starts at zero. The client calls
// CompleteStep after each durable step and Finish when the item is done.
#ifndef SRC_KERNEL_IMMORTAL_H_
#define SRC_KERNEL_IMMORTAL_H_

#include <cstdint>
#include <string>

#include "src/sim/memory.h"

namespace artemis {

class ImmortalContext {
 public:
  // Registers the persistent cursor with the NVM arena for accounting.
  ImmortalContext(NvmArena* nvm, MemOwner owner, const std::string& label);

  // Starts (or resumes) processing of work item `id`. Returns the index of
  // the first step that still needs to run (0 for a fresh item).
  std::uint32_t Begin(std::uint64_t id);

  // Marks one more step of the current item durably complete.
  void CompleteStep();

  // Marks the current item fully processed.
  void Finish();

  bool InProgress() const { return in_progress_; }
  std::uint64_t CurrentItem() const { return item_; }
  std::uint32_t Cursor() const { return cursor_; }

 private:
  // These three fields model FRAM-resident variables: they survive simulated
  // power failures because the simulation never destroys this object.
  std::uint64_t item_ = 0;
  std::uint32_t cursor_ = 0;
  bool in_progress_ = false;
};

}  // namespace artemis

#endif  // SRC_KERNEL_IMMORTAL_H_
