#include "src/kernel/task.h"

namespace artemis {

const char* TaskStatusName(TaskStatus status) {
  switch (status) {
    case TaskStatus::kReady:
      return "READY";
    case TaskStatus::kFinished:
      return "FINISHED";
  }
  return "?";
}

}  // namespace artemis
