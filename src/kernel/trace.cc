#include "src/kernel/trace.h"

#include <sstream>

#include "src/base/units.h"

namespace artemis {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kBoot:
      return "BOOT";
    case TraceKind::kTaskStart:
      return "task-start";
    case TraceKind::kTaskEnd:
      return "task-end";
    case TraceKind::kTaskAborted:
      return "task-aborted(power-failure)";
    case TraceKind::kViolation:
      return "property-violation";
    case TraceKind::kActionApplied:
      return "action";
    case TraceKind::kPathStart:
      return "path-start";
    case TraceKind::kPathRestart:
      return "path-restart";
    case TraceKind::kPathSkip:
      return "path-skip";
    case TraceKind::kPathCompleteUnmonitored:
      return "path-complete-unmonitored";
    case TraceKind::kTaskSkipped:
      return "task-skipped";
    case TraceKind::kAppComplete:
      return "app-complete";
  }
  return "?";
}

obs::Kind ToObsKind(TraceKind kind) {
  switch (kind) {
    case TraceKind::kBoot:
      return obs::Kind::kKernelBoot;
    case TraceKind::kTaskStart:
      return obs::Kind::kTaskStart;
    case TraceKind::kTaskEnd:
      return obs::Kind::kTaskEnd;
    case TraceKind::kTaskAborted:
      return obs::Kind::kTaskAborted;
    case TraceKind::kViolation:
      return obs::Kind::kViolation;
    case TraceKind::kActionApplied:
      return obs::Kind::kActionApplied;
    case TraceKind::kPathStart:
      return obs::Kind::kPathStart;
    case TraceKind::kPathRestart:
      return obs::Kind::kPathRestart;
    case TraceKind::kPathSkip:
      return obs::Kind::kPathSkip;
    case TraceKind::kPathCompleteUnmonitored:
      return obs::Kind::kPathCompleteUnmonitored;
    case TraceKind::kTaskSkipped:
      return obs::Kind::kTaskSkipped;
    case TraceKind::kAppComplete:
      return obs::Kind::kAppComplete;
  }
  return obs::Kind::kKernelBoot;
}

std::size_t ExecutionTrace::Count(TraceKind kind) const {
  std::size_t n = 0;
  for (const TraceRecord& r : records_) {
    if (r.kind == kind) {
      ++n;
    }
  }
  return n;
}

std::size_t ExecutionTrace::CountForTask(TraceKind kind, TaskId task) const {
  std::size_t n = 0;
  for (const TraceRecord& r : records_) {
    if (r.kind == kind && r.task == task) {
      ++n;
    }
  }
  return n;
}

std::string ExecutionTrace::ToString(const std::vector<std::string>& names) const {
  std::ostringstream out;
  for (const TraceRecord& r : records_) {
    out << FormatTimestamp(r.time) << ' ' << TraceKindName(r.kind);
    if (r.task != kInvalidTask) {
      out << ' ';
      if (r.task < names.size()) {
        out << names[r.task];
      } else {
        out << "task#" << r.task;
      }
    }
    if (r.path != kNoPath) {
      out << " path#" << r.path;
    }
    if (r.attempt != 0) {
      out << " attempt=" << r.attempt;
    }
    if (r.action != ActionType::kNone) {
      out << " action=" << ActionTypeName(r.action);
    }
    if (!r.detail.empty()) {
      out << " [" << r.detail << ']';
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace artemis
