// Checkpointing-class intermittent execution (Section 2 background).
//
// Besides task-based systems (the class ARTEMIS targets), the paper's
// background surveys checkpointing systems (Mementos, HarvOS, TICS, ...):
// straight-line programs snapshot their volatile state (registers, stack,
// globals) to non-volatile memory at chosen points and resume from the last
// snapshot after a power failure. This module provides that substrate so the
// repository covers both execution models the paper discusses, and so the
// background bench can reproduce the classic checkpoint-spacing trade-off
// (sparse checkpoints = less overhead but more re-executed work).
#ifndef SRC_KERNEL_CHECKPOINT_H_
#define SRC_KERNEL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/sim/mcu.h"

namespace artemis {

// One straight-line region of computation between potential checkpoints.
struct CodeBlock {
  std::string name;
  SimDuration duration = kMillisecond;
  Milliwatts power = 0.66;
};

struct CheckpointProgram {
  std::vector<CodeBlock> blocks;
  // Volatile state captured by one checkpoint (registers + live stack).
  std::size_t snapshot_bytes = 512;

  SimDuration TotalWork() const;
};

struct CheckpointOptions {
  // Take a checkpoint after every `spacing` blocks (1 = after each block).
  std::uint32_t spacing = 1;
  // Give up after this much simulated wall time (0 = unlimited).
  SimDuration max_wall_time = 0;
};

struct CheckpointRunResult {
  bool completed = false;
  bool starved = false;
  bool timed_out = false;
  SimTime finished_at = 0;
  std::uint64_t checkpoints_taken = 0;
  // Work re-executed because a failure landed after the last checkpoint.
  SimDuration reexecuted_work = 0;
  McuStats stats;
};

// Runs the program to completion under the MCU's power supply, writing a
// snapshot every `spacing` blocks and replaying from the last snapshot after
// every power failure. Checkpoint cost: snapshot_bytes at the cost model's
// NVM commit rate plus a fixed boundary, charged as runtime overhead.
CheckpointRunResult RunCheckpointed(const CheckpointProgram& program,
                                    const CheckpointOptions& options, Mcu* mcu);

// A synthetic N-block program with uniform block cost, for benches/tests.
CheckpointProgram MakeUniformProgram(std::size_t blocks, SimDuration block_duration,
                                     Milliwatts power, std::size_t snapshot_bytes = 512);

}  // namespace artemis

#endif  // SRC_KERNEL_CHECKPOINT_H_
