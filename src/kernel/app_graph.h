// Application graph: the set of tasks and the ordered paths through them.
//
// A path is a sequence of tasks executed in order; the application executes
// its paths in declaration order and completes when the last path completes
// (Section 4.1.2 "Path and Task Order"). Tasks may appear in several paths
// ("path merging", e.g. the `send` task in Figure 6).
#ifndef SRC_KERNEL_APP_GRAPH_H_
#define SRC_KERNEL_APP_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/kernel/task.h"

namespace artemis {

class AppGraph {
 public:
  TaskId AddTask(TaskDef def);

  // Adds a path as an ordered list of task ids; returns its 1-based number.
  PathId AddPath(std::vector<TaskId> tasks);
  // Convenience: path from task names; all names must already exist.
  StatusOr<PathId> AddPathByNames(const std::vector<std::string>& names);

  std::size_t task_count() const { return tasks_.size(); }
  std::size_t path_count() const { return paths_.size(); }

  const TaskDef& task(TaskId id) const { return tasks_[id]; }
  TaskDef& task(TaskId id) { return tasks_[id]; }
  const std::vector<TaskId>& path(PathId id) const { return paths_[id - 1]; }

  std::optional<TaskId> FindTask(const std::string& name) const;
  const std::string& TaskName(TaskId id) const { return tasks_[id].name; }

  // Paths (1-based numbers) that contain the given task.
  std::vector<PathId> PathsContaining(TaskId task) const;

  // Validation: every path non-empty, every referenced task exists, at least
  // one path.
  Status Validate() const;

  // Graphviz dump of paths and tasks, for docs/examples.
  std::string ToDot() const;

 private:
  std::vector<TaskDef> tasks_;
  std::vector<std::vector<TaskId>> paths_;
};

}  // namespace artemis

#endif  // SRC_KERNEL_APP_GRAPH_H_
