#include "src/kernel/channel.h"

#include "src/kernel/app_graph.h"

namespace artemis {

const std::vector<double> TaskContext::kEmpty{};

void ChannelStore::AppendSamples(TaskId task, const std::vector<double>& values) {
  auto& samples = slots_[task].samples;
  samples.insert(samples.end(), values.begin(), values.end());
}

void ChannelStore::RecordCompletion(TaskId task, SimTime when) {
  ++slots_[task].completions;
  slots_[task].last_completion = when;
}

std::size_t ChannelStore::FootprintBytes() const {
  std::size_t bytes = 0;
  for (const Slot& slot : slots_) {
    bytes += sizeof(Slot) + slot.samples.capacity() * sizeof(double);
  }
  return bytes;
}

void ChannelStore::Reset() {
  for (Slot& slot : slots_) {
    slot = Slot{};
  }
}

TaskContext::TaskContext(const AppGraph* graph, const ChannelStore* store, TaskId self,
                         SimTime now, Rng* rng)
    : graph_(graph), store_(store), self_(self), now_(now), rng_(rng) {}

const std::vector<double>& TaskContext::SamplesOf(const std::string& task_name) const {
  const std::optional<TaskId> id = graph_->FindTask(task_name);
  if (!id.has_value()) {
    return kEmpty;
  }
  return store_->Samples(*id);
}

std::uint64_t TaskContext::CompletionsOf(const std::string& task_name) const {
  const std::optional<TaskId> id = graph_->FindTask(task_name);
  return id.has_value() ? store_->CompletionCount(*id) : 0;
}

void TaskContext::ConsumeAll(const std::string& task_name) {
  const std::optional<TaskId> id = graph_->FindTask(task_name);
  if (id.has_value()) {
    consumes_.push_back(*id);
  }
}

}  // namespace artemis
