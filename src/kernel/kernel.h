// The intermittent kernel: executes an AppGraph's paths task by task on the
// simulated MCU, survives power failures, and drives a pluggable
// PropertyChecker with StartTask/EndTask events (Figures 8 and 9).
//
// Boundary protocol (Section 4.1):
//  * Each task is atomic: its body runs, then its staged data effects commit
//    together with the FINISHED status flip. A power failure before the
//    commit point discards everything and the task re-executes.
//  * Before running a READY task the kernel builds a StartTask event and
//    calls the checker; after a task commits it builds an EndTask event with
//    the *preserved* commit timestamp (Section 4.1.3) and calls the checker.
//  * Events carry a persistent sequence number. If a power failure
//    interrupts the checker, the same event (same seq) is re-delivered and
//    the checker resumes; once the verdict has been applied the event is
//    retired. A power failure during the task *body* instead produces a
//    fresh StartTask event, which is how monitors observe re-execution
//    attempts.
#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/kernel/app_graph.h"
#include "src/kernel/channel.h"
#include "src/kernel/checker.h"
#include "src/flight/recorder.h"
#include "src/kernel/trace.h"
#include "src/obs/bus.h"
#include "src/sim/mcu.h"

namespace artemis {

// Hook invoked at task-boundary quiescence points: the kernel is about to
// start a READY task and no monitor event is pending, so the checker's FRAM
// state sits at a transition boundary. The hot-swap controller
// (src/swap/hotswap.h) implements this to apply over-the-air monitor
// replacements; returning kPowerFailure/kStarved aborts the step exactly
// like any other charged work (the hook is re-invoked at the next
// quiescence point after the reboot).
class SwapHook {
 public:
  virtual ~SwapHook() = default;
  virtual ExecStatus AtQuiescence(Mcu& mcu) = 0;
};

struct KernelOptions {
  std::uint64_t seed = 1;
  // Give up (report non-termination) when the simulated wall clock passes
  // this limit. 0 = unlimited.
  SimDuration max_wall_time = 0;
  // Safety valve on boundary crossings, against bugs in checkers.
  std::uint64_t max_steps = 2'000'000;
  // Record an execution trace (costs host memory only).
  bool record_trace = true;
  // How many times to run the whole path sequence (continuous sensing
  // applications loop forever; benches pick a finite horizon). 0 == 1.
  std::uint64_t app_iterations = 1;
  // Idle (harvest-only) time inserted between iterations, modelling the
  // duty-cycled sleep between sampling rounds.
  SimDuration inter_iteration_gap = 0;
  // Cross-layer observability bus (src/obs): when set, the kernel publishes
  // task/path lifecycle and checkpoint-commit events, independent of
  // record_trace. nullptr = publishing off (a single null check per site).
  obs::EventBus* observer = nullptr;
  // On-device flight recorder (src/flight): when set, the kernel seals
  // task-boundary and commit records into the FRAM black box. Unlike the
  // obs bus this costs simulated cycles and can itself be interrupted by a
  // power failure; the recorder must already be attached to the MCU
  // (Mcu::AttachFlightRecorder). nullptr = recording off.
  flight::FlightRecorder* flight = nullptr;
  // Monitor hot-swap delivery (src/swap): when set, the kernel calls the
  // hook at every task-boundary quiescence point (READY task, no pending
  // event) before building the StartTask event, so an over-the-air monitor
  // replacement can stage + commit between transitions. See docs/hotswap.md.
  SwapHook* swap_hook = nullptr;
};

// Per-task execution profile (the Section 5.1 measurement that identifies
// `accel` as the highest-consuming task).
struct TaskProfile {
  std::uint64_t commits = 0;  // committed completions
  std::uint64_t aborts = 0;   // power failures inside the task body
  std::uint64_t skips = 0;    // skipTask actions applied at start
  SimDuration busy_time = 0;  // body time including aborted partial runs
  EnergyUj energy = 0.0;      // body energy including aborted partial runs
};

struct KernelRunResult {
  bool completed = false;   // the application executed all paths
  bool starved = false;     // the device could never finish even booting
  bool timed_out = false;   // wall-clock limit hit: non-termination
  SimTime finished_at = 0;  // simulated completion (or give-up) time
  std::uint64_t iterations_completed = 0;  // full passes over the path set
  McuStats stats;           // busy time / energy per component, reboots
};

class IntermittentKernel {
 public:
  // `graph` and `checker` must outlive the kernel. The kernel registers its
  // persistent state with the MCU's NVM arena under MemOwner::kRuntime.
  IntermittentKernel(const AppGraph* graph, PropertyChecker* checker, Mcu* mcu,
                     KernelOptions options = {});

  // Runs the application from its very first boot to completion (or
  // starvation / non-termination).
  KernelRunResult Run();

  // Late wiring for the hot-swap hook: the controller needs the MonitorSet,
  // which only exists after the runtime is built, so the hook cannot always
  // be threaded through KernelOptions at construction time.
  void set_swap_hook(SwapHook* hook) { options_.swap_hook = hook; }

  const ExecutionTrace& trace() const { return trace_; }
  const std::vector<TaskProfile>& profiles() const { return profiles_; }
  const ChannelStore& channels() const { return channels_; }
  ChannelStore& channels() { return channels_; }
  const AppGraph& graph() const { return *graph_; }
  Mcu& mcu() { return *mcu_; }

  // Current position, exposed for tests.
  PathId current_path() const { return static_cast<PathId>(path_idx_ + 1); }
  TaskId current_task() const;
  bool app_complete() const { return app_complete_; }

 private:
  // One iteration of the Figure 8 main loop. Returns kPowerFailure when the
  // device rebooted mid-step.
  ExecStatus Step();

  ExecStatus HandleReady(TaskId task);
  ExecStatus HandleFinished(TaskId task);
  ExecStatus RunTaskBody(TaskId task);
  ExecStatus CommitTask(TaskId task, TaskContext& ctx);
  ExecStatus RunUnmonitored();

  // Applies a corrective action; state mutation is atomic (commit-point
  // semantics), and the action's cycle cost is charged afterwards.
  ExecStatus ApplyAction(const MonitorVerdict& verdict, EventKind at);

  void AdvanceTask();
  void EnterPath(std::size_t path_idx);
  void MarkAppComplete();

  // Builds (or keeps, when resuming) the pending event for this boundary.
  ExecStatus EnsureStartEvent(TaskId task);
  ExecStatus EnsureEndEvent(TaskId task);

  void Trace(TraceKind kind, TaskId task, ActionType action = ActionType::kNone,
             const std::string& detail = "");
  void PublishCommit(TaskId task, std::size_t bytes);

  const AppGraph* graph_;
  PropertyChecker* checker_;
  Mcu* mcu_;
  KernelOptions options_;
  Rng rng_;

  // ---- persistent (FRAM) state ----
  std::size_t path_idx_ = 0;   // 0-based index into the path list
  std::size_t task_idx_ = 0;   // position within the current path
  TaskStatus cur_status_ = TaskStatus::kReady;
  SimTime cur_finish_ts_ = 0;  // commit timestamp of the current task
  std::uint32_t cur_attempts_ = 0;
  MonitorEvent event_;         // Figure 8's persistent `event`
  bool event_pending_ = false;
  std::uint64_t event_seq_ = 0;
  bool unmonitored_ = false;   // completePath tail in progress
  bool app_complete_ = false;
  std::uint64_t iterations_done_ = 0;

  ChannelStore channels_;
  ExecutionTrace trace_;
  std::vector<TaskProfile> profiles_;
};

}  // namespace artemis

#endif  // SRC_KERNEL_KERNEL_H_
