#include "src/kernel/kernel.h"

#include <algorithm>
#include <cassert>

namespace artemis {
namespace {

constexpr std::size_t kCommitOverheadBytes = 32;

ExecStatus ToExecStatus(int status) { return static_cast<ExecStatus>(status); }

}  // namespace

IntermittentKernel::IntermittentKernel(const AppGraph* graph, PropertyChecker* checker,
                                       Mcu* mcu, KernelOptions options)
    : graph_(graph),
      checker_(checker),
      mcu_(mcu),
      options_(options),
      rng_(options.seed),
      channels_(graph->task_count()),
      profiles_(graph->task_count()) {
  assert(graph_->Validate().ok() && "invalid application graph");
  // Register the kernel's FRAM-resident state for Table 2 accounting. The
  // layout mirrors Figure 8: task cursor, statuses, the persistent event,
  // and the committed channel data.
  NvmArena& nvm = mcu_->nvm();
  nvm.Allocate(MemOwner::kRuntime, sizeof(path_idx_) + sizeof(task_idx_) + sizeof(cur_status_) +
                                       sizeof(cur_finish_ts_) + sizeof(cur_attempts_) +
                                       sizeof(event_) + sizeof(event_pending_) +
                                       sizeof(event_seq_) + sizeof(unmonitored_) +
                                       sizeof(app_complete_),
               "kernel-control-block");
  nvm.Allocate(MemOwner::kApp, channels_.FootprintBytes() + graph_->task_count() * 24,
               "channel-store");
  // The runtime needs only a pair of volatile scratch bytes (loop cursor),
  // matching the paper's 2-byte RAM figure for both runtimes.
  mcu_->ram().Allocate(MemOwner::kRuntime, 2, "loop-scratch", [] {});
}

TaskId IntermittentKernel::current_task() const {
  if (path_idx_ >= graph_->path_count()) {
    return kInvalidTask;
  }
  const auto& path = graph_->path(static_cast<PathId>(path_idx_ + 1));
  return task_idx_ < path.size() ? path[task_idx_] : kInvalidTask;
}

void IntermittentKernel::Trace(TraceKind kind, TaskId task, ActionType action,
                               const std::string& detail) {
  if (options_.record_trace) {
    trace_.Record(TraceRecord{.kind = kind,
                              .time = mcu_->Now(),
                              .true_time = mcu_->TrueNow(),
                              .task = task,
                              .path = static_cast<PathId>(path_idx_ + 1),
                              .attempt = cur_attempts_,
                              .action = action,
                              .detail = detail});
  }
  if (options_.observer != nullptr) {
    obs::Event event{.kind = ToObsKind(kind),
                     .time = mcu_->Now(),
                     .true_time = mcu_->TrueNow(),
                     .task = task,
                     .path = static_cast<PathId>(path_idx_ + 1),
                     .attempt = cur_attempts_,
                     .seq = event_seq_,
                     .energy_uj = mcu_->stats().TotalEnergy(),
                     .energy_fraction = mcu_->power_model().StoredEnergyFraction(),
                     .detail = detail};
    if (action != ActionType::kNone) {
      event.action = ActionTypeName(action);
    }
    // Task end/abort events carry the task's cumulative execution profile
    // so sinks can attribute per-task time/energy without a second source.
    if ((kind == TraceKind::kTaskEnd || kind == TraceKind::kTaskAborted) &&
        task != kInvalidTask) {
      event.duration = profiles_[task].busy_time;
      event.value = profiles_[task].energy;
    }
    options_.observer->Publish(event);
  }
}

void IntermittentKernel::PublishCommit(TaskId task, std::size_t bytes) {
  if (options_.observer == nullptr) {
    return;
  }
  options_.observer->Publish(
      obs::Event{.kind = obs::Kind::kCommit,
                 .time = mcu_->Now(),
                 .true_time = mcu_->TrueNow(),
                 .task = task,
                 .path = static_cast<PathId>(path_idx_ + 1),
                 .attempt = cur_attempts_,
                 .seq = event_seq_,
                 .value = static_cast<double>(bytes),
                 .energy_uj = mcu_->stats().TotalEnergy(),
                 .energy_fraction = mcu_->power_model().StoredEnergyFraction()});
}

KernelRunResult IntermittentKernel::Run() {
  KernelRunResult result;
  const SimTime start = mcu_->TrueNow();

  // Initial hard reset (Figure 8, resetMonitor): once per application life.
  checker_->HardReset(*mcu_);
  Trace(TraceKind::kBoot, kInvalidTask);
  Trace(TraceKind::kPathStart, current_task());
  if (options_.flight != nullptr) {
    // Black-box epoch 0 (the first power life). A failure here simply means
    // the run opened with a reboot before any task executed.
    if (options_.flight->AppendBoot() && options_.flight->boot_recorded()) {
      (void)options_.flight->AppendChargeSnapshot(
          mcu_->power_model().StoredEnergyFraction());
    }
  }

  std::uint64_t steps = 0;
  while (!app_complete_) {
    if (mcu_->starved()) {
      result.starved = true;
      break;
    }
    if (options_.max_wall_time != 0 && mcu_->TrueNow() - start > options_.max_wall_time) {
      result.timed_out = true;
      break;
    }
    if (++steps > options_.max_steps) {
      result.timed_out = true;
      break;
    }
    const ExecStatus status = Step();
    if (status == ExecStatus::kPowerFailure) {
      // Reboot path (Figure 8): progress any interrupted monitor operation.
      Trace(TraceKind::kBoot, kInvalidTask);
      checker_->Finalize(*mcu_);
    } else if (status == ExecStatus::kStarved) {
      result.starved = true;
      break;
    }
  }

  if (app_complete_) {
    Trace(TraceKind::kAppComplete, kInvalidTask);
  }
  result.completed = app_complete_;
  result.finished_at = mcu_->TrueNow();
  result.iterations_completed = iterations_done_;
  result.stats = mcu_->stats();
  return result;
}

ExecStatus IntermittentKernel::Step() {
  if (app_complete_) {
    return ExecStatus::kOk;
  }
  // Task-boundary quiescence point: the next task is READY and no monitor
  // event is pending (mid-attempt reboots also land here — an aborted body
  // resumes in kReady with its event retired). A pending hot-swap stages
  // and commits here, between transitions; a power failure inside the hook
  // aborts this step like any other charged work and the hook re-runs at
  // the next boundary.
  if (options_.swap_hook != nullptr && !event_pending_ &&
      cur_status_ == TaskStatus::kReady) {
    const ExecStatus swap = options_.swap_hook->AtQuiescence(*mcu_);
    if (swap != ExecStatus::kOk) {
      return swap;
    }
  }
  if (unmonitored_) {
    return RunUnmonitored();
  }
  const TaskId task = current_task();
  if (task == kInvalidTask) {
    MarkAppComplete();
    return ExecStatus::kOk;
  }
  switch (cur_status_) {
    case TaskStatus::kReady:
      return HandleReady(task);
    case TaskStatus::kFinished:
      return HandleFinished(task);
  }
  return ExecStatus::kOk;
}

ExecStatus IntermittentKernel::EnsureStartEvent(TaskId task) {
  if (event_pending_ && event_.kind == EventKind::kStartTask && event_.task == task) {
    return ExecStatus::kOk;  // Resume the interrupted delivery (same seq).
  }
  ExecStatus status = mcu_->ExecuteCycles(mcu_->costs().event_build_cycles, CostTag::kRuntime);
  if (status != ExecStatus::kOk) {
    return status;
  }
  status = mcu_->ExecuteCycles(mcu_->costs().timestamp_read_cycles, CostTag::kRuntime);
  if (status != ExecStatus::kOk) {
    return status;
  }
  event_ = MonitorEvent{.kind = EventKind::kStartTask,
                        .timestamp = mcu_->Now(),
                        .task = task,
                        .path = static_cast<PathId>(path_idx_ + 1),
                        .seq = ++event_seq_,
                        .has_dep_data = false,
                        .dep_data = 0.0,
                        .energy_fraction = mcu_->power_model().StoredEnergyFraction()};
  event_pending_ = true;
  return ExecStatus::kOk;
}

ExecStatus IntermittentKernel::EnsureEndEvent(TaskId task) {
  if (event_pending_ && event_.kind == EventKind::kEndTask && event_.task == task) {
    return ExecStatus::kOk;
  }
  const ExecStatus status =
      mcu_->ExecuteCycles(mcu_->costs().event_build_cycles, CostTag::kRuntime);
  if (status != ExecStatus::kOk) {
    return status;
  }
  // Section 4.1.3: the EndTask timestamp is the preserved commit time, not a
  // fresh clock read, so re-deliveries after power failures stay accurate.
  const TaskDef& def = graph_->task(task);
  const std::optional<double> dep =
      def.monitored_var.has_value() ? channels_.MonitoredValue(task) : std::nullopt;
  event_ = MonitorEvent{.kind = EventKind::kEndTask,
                        .timestamp = cur_finish_ts_,
                        .task = task,
                        .path = static_cast<PathId>(path_idx_ + 1),
                        .seq = ++event_seq_,
                        .has_dep_data = dep.has_value(),
                        .dep_data = dep.value_or(0.0),
                        .energy_fraction = mcu_->power_model().StoredEnergyFraction()};
  event_pending_ = true;
  return ExecStatus::kOk;
}

ExecStatus IntermittentKernel::HandleReady(TaskId task) {
  ExecStatus status = mcu_->ExecuteCycles(mcu_->costs().kernel_boundary_cycles, CostTag::kRuntime);
  if (status != ExecStatus::kOk) {
    return status;
  }
  status = EnsureStartEvent(task);
  if (status != ExecStatus::kOk) {
    return status;
  }
  const CheckOutcome outcome = checker_->OnEvent(event_, *mcu_);
  if (ToExecStatus(outcome.status) != ExecStatus::kOk) {
    return ToExecStatus(outcome.status);
  }
  // Seal the boundary record while the event is still pending: if the append
  // is interrupted, the reboot replays this boundary with the same seq (the
  // checker's verdict cache answers instantly) and retries the append.
  if (options_.flight != nullptr &&
      !options_.flight->AppendTaskStart(event_.seq, task,
                                        static_cast<std::uint32_t>(path_idx_ + 1),
                                        cur_attempts_ + 1)) {
    return ExecStatus::kPowerFailure;
  }
  event_pending_ = false;  // Verdict obtained; the event is retired.
  ++cur_attempts_;
  Trace(TraceKind::kTaskStart, task);
  if (outcome.verdict.violated()) {
    Trace(TraceKind::kViolation, task, outcome.verdict.action, outcome.verdict.property);
    return ApplyAction(outcome.verdict, EventKind::kStartTask);
  }
  return RunTaskBody(task);
}

ExecStatus IntermittentKernel::RunTaskBody(TaskId task) {
  const TaskDef& def = graph_->task(task);
  const int app = static_cast<int>(CostTag::kApp);
  const SimDuration time_before = mcu_->stats().busy_time[app];
  const EnergyUj energy_before = mcu_->stats().energy[app];
  const ExecStatus status = mcu_->Execute(def.work.duration, def.work.power, CostTag::kApp);
  profiles_[task].busy_time += mcu_->stats().busy_time[app] - time_before;
  profiles_[task].energy += mcu_->stats().energy[app] - energy_before;
  if (status != ExecStatus::kOk) {
    ++profiles_[task].aborts;
    Trace(TraceKind::kTaskAborted, task);
    return status;
  }
  TaskContext ctx(graph_, &channels_, task, mcu_->Now(), &rng_);
  if (def.effect) {
    def.effect(ctx);
  }
  return CommitTask(task, ctx);
}

ExecStatus IntermittentKernel::CommitTask(TaskId task, TaskContext& ctx) {
  const std::size_t bytes = ctx.staged_samples().size() * sizeof(double) + kCommitOverheadBytes;
  const double cycles = mcu_->costs().nvm_commit_cycles_per_byte * static_cast<double>(bytes) +
                        mcu_->costs().kernel_boundary_cycles;
  const ExecStatus status = mcu_->ExecuteCycles(cycles, CostTag::kRuntime);
  if (status != ExecStatus::kOk) {
    return status;  // Pre-commit failure: the whole task re-executes.
  }
  // ---- atomic commit point ----
  cur_finish_ts_ = mcu_->Now();
  for (const TaskId consumed : ctx.staged_consumes()) {
    channels_.ClearSamples(consumed);
  }
  channels_.AppendSamples(task, ctx.staged_samples());
  if (ctx.staged_monitored().has_value()) {
    channels_.SetMonitored(task, *ctx.staged_monitored());
  }
  channels_.RecordCompletion(task, cur_finish_ts_);
  ++profiles_[task].commits;
  cur_status_ = TaskStatus::kFinished;
  PublishCommit(task, bytes);
  // The commit itself is already durable; the record is best-effort. An
  // interrupted append is not retried after the reboot (the kernel resumes
  // in kFinished), so a lost commit record just leaves a gap in the log.
  if (options_.flight != nullptr &&
      !options_.flight->AppendCommit(event_seq_, task, bytes)) {
    return ExecStatus::kPowerFailure;
  }
  return ExecStatus::kOk;
}

ExecStatus IntermittentKernel::HandleFinished(TaskId task) {
  ExecStatus status = mcu_->ExecuteCycles(mcu_->costs().kernel_boundary_cycles, CostTag::kRuntime);
  if (status != ExecStatus::kOk) {
    return status;
  }
  status = EnsureEndEvent(task);
  if (status != ExecStatus::kOk) {
    return status;
  }
  const CheckOutcome outcome = checker_->OnEvent(event_, *mcu_);
  if (ToExecStatus(outcome.status) != ExecStatus::kOk) {
    return ToExecStatus(outcome.status);
  }
  if (options_.flight != nullptr &&
      !options_.flight->AppendTaskEnd(event_.seq, task,
                                      static_cast<std::uint32_t>(path_idx_ + 1))) {
    return ExecStatus::kPowerFailure;
  }
  event_pending_ = false;
  Trace(TraceKind::kTaskEnd, task);
  if (outcome.verdict.violated()) {
    Trace(TraceKind::kViolation, task, outcome.verdict.action, outcome.verdict.property);
    return ApplyAction(outcome.verdict, EventKind::kEndTask);
  }
  AdvanceTask();
  return ExecStatus::kOk;
}

ExecStatus IntermittentKernel::RunUnmonitored() {
  const TaskId task = current_task();
  if (task == kInvalidTask) {
    MarkAppComplete();
    return ExecStatus::kOk;
  }
  const ExecStatus status =
      mcu_->ExecuteCycles(mcu_->costs().kernel_boundary_cycles, CostTag::kRuntime);
  if (status != ExecStatus::kOk) {
    return status;
  }
  if (cur_status_ == TaskStatus::kReady) {
    ++cur_attempts_;
    Trace(TraceKind::kTaskStart, task, ActionType::kNone, "unmonitored");
    return RunTaskBody(task);
  }
  Trace(TraceKind::kTaskEnd, task, ActionType::kNone, "unmonitored");
  AdvanceTask();
  return ExecStatus::kOk;
}

ExecStatus IntermittentKernel::ApplyAction(const MonitorVerdict& verdict, EventKind at) {
  const TaskId task = current_task();
  switch (verdict.action) {
    case ActionType::kNone:
      break;
    case ActionType::kRestartTask:
      // Re-run the current task; for an EndTask violation the committed
      // execution stands and the task simply runs again.
      cur_status_ = TaskStatus::kReady;
      Trace(TraceKind::kActionApplied, task, verdict.action);
      break;
    case ActionType::kSkipTask:
      if (at == EventKind::kStartTask) {
        ++profiles_[task].skips;
        Trace(TraceKind::kTaskSkipped, task, verdict.action);
      } else {
        Trace(TraceKind::kActionApplied, task, verdict.action);
      }
      AdvanceTask();
      break;
    case ActionType::kRestartPath: {
      const std::size_t target = verdict.target_path != kNoPath
                                     ? static_cast<std::size_t>(verdict.target_path - 1)
                                     : path_idx_;
      Trace(TraceKind::kPathRestart, task, verdict.action, verdict.property);
      EnterPath(target);
      checker_->OnPathRestart(static_cast<PathId>(target + 1), *mcu_);
      break;
    }
    case ActionType::kSkipPath: {
      const std::size_t target = verdict.target_path != kNoPath
                                     ? static_cast<std::size_t>(verdict.target_path - 1)
                                     : path_idx_;
      Trace(TraceKind::kPathSkip, task, verdict.action, verdict.property);
      const std::size_t next = std::max(path_idx_, target) + 1;
      if (next >= graph_->path_count()) {
        MarkAppComplete();
      } else {
        EnterPath(next);
      }
      break;
    }
    case ActionType::kCompletePath:
      // Table 1: finish the current path without monitoring, then resume
      // monitored execution after it.
      Trace(TraceKind::kActionApplied, task, verdict.action, verdict.property);
      unmonitored_ = true;
      if (at == EventKind::kEndTask) {
        AdvanceTask();
      } else {
        cur_status_ = TaskStatus::kReady;
      }
      break;
  }
  return mcu_->ExecuteCycles(mcu_->costs().action_apply_cycles, CostTag::kRuntime);
}

void IntermittentKernel::AdvanceTask() {
  const PathId path_id = static_cast<PathId>(path_idx_ + 1);
  const auto& path = graph_->path(path_id);
  cur_attempts_ = 0;
  cur_status_ = TaskStatus::kReady;
  cur_finish_ts_ = 0;
  if (task_idx_ + 1 < path.size()) {
    ++task_idx_;
    return;
  }
  // Path complete.
  if (unmonitored_) {
    unmonitored_ = false;
    // Record the path's final task (task_idx_ still points at it) so the
    // trace renders which task closed the unmonitored tail.
    Trace(TraceKind::kPathCompleteUnmonitored, path.empty() ? kInvalidTask : path[task_idx_]);
    // Monitors tied to the silently completed path restart from scratch.
    checker_->OnPathRestart(path_id, *mcu_);
  }
  if (path_idx_ + 1 < graph_->path_count()) {
    EnterPath(path_idx_ + 1);
  } else {
    MarkAppComplete();
  }
}

void IntermittentKernel::EnterPath(std::size_t path_idx) {
  path_idx_ = path_idx;
  task_idx_ = 0;
  cur_status_ = TaskStatus::kReady;
  cur_attempts_ = 0;
  cur_finish_ts_ = 0;
  Trace(TraceKind::kPathStart, current_task());
}

void IntermittentKernel::MarkAppComplete() {
  ++iterations_done_;
  const std::uint64_t goal = options_.app_iterations == 0 ? 1 : options_.app_iterations;
  if (iterations_done_ < goal) {
    // Continuous operation: sleep the duty-cycle gap, then start the next
    // sampling round from path #1.
    if (options_.inter_iteration_gap != 0) {
      mcu_->Idle(options_.inter_iteration_gap);
      mcu_->power_model().NotifyReboot(mcu_->TrueNow());  // Idle time recharges.
    }
    EnterPath(0);
    return;
  }
  app_complete_ = true;
}

}  // namespace artemis
