#include "src/kernel/app_graph.h"

#include <sstream>

namespace artemis {

TaskId AppGraph::AddTask(TaskDef def) {
  tasks_.push_back(std::move(def));
  return static_cast<TaskId>(tasks_.size() - 1);
}

PathId AppGraph::AddPath(std::vector<TaskId> tasks) {
  paths_.push_back(std::move(tasks));
  return static_cast<PathId>(paths_.size());
}

StatusOr<PathId> AppGraph::AddPathByNames(const std::vector<std::string>& names) {
  std::vector<TaskId> ids;
  ids.reserve(names.size());
  for (const std::string& name : names) {
    const std::optional<TaskId> id = FindTask(name);
    if (!id.has_value()) {
      return Status::NotFound("no task named '" + name + "'");
    }
    ids.push_back(*id);
  }
  return AddPath(std::move(ids));
}

std::optional<TaskId> AppGraph::FindTask(const std::string& name) const {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].name == name) {
      return static_cast<TaskId>(i);
    }
  }
  return std::nullopt;
}

std::vector<PathId> AppGraph::PathsContaining(TaskId task) const {
  std::vector<PathId> out;
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    for (TaskId t : paths_[p]) {
      if (t == task) {
        out.push_back(static_cast<PathId>(p + 1));
        break;
      }
    }
  }
  return out;
}

Status AppGraph::Validate() const {
  if (paths_.empty()) {
    return Status::FailedPrecondition("application has no paths");
  }
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    if (paths_[p].empty()) {
      return Status::FailedPrecondition("path #" + std::to_string(p + 1) + " is empty");
    }
    for (TaskId t : paths_[p]) {
      if (t >= tasks_.size()) {
        return Status::OutOfRange("path #" + std::to_string(p + 1) +
                                  " references unknown task id " + std::to_string(t));
      }
    }
  }
  return Status::Ok();
}

std::string AppGraph::ToDot() const {
  std::ostringstream out;
  out << "digraph app {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    out << "  t" << i << " [label=\"" << tasks_[i].name << "\", shape=box];\n";
  }
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    const auto& path = paths_[p];
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      out << "  t" << path[i] << " -> t" << path[i + 1] << " [label=\"P" << (p + 1) << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace artemis
