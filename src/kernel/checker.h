// The runtime <-> property-checker interface.
//
// The kernel emits StartTask/EndTask events (Section 3.4) and receives a
// verdict that may demand a corrective action (Table 1). ARTEMIS implements
// this interface with generated monitors (src/monitor); Mayfly implements it
// with fused inline checks (src/mayfly); a null checker turns monitoring
// off. This is the paper's central modularity claim: the kernel below this
// interface never changes when property checking changes.
#ifndef SRC_KERNEL_CHECKER_H_
#define SRC_KERNEL_CHECKER_H_

#include <cstdint>
#include <string>

#include "src/base/time.h"
#include "src/kernel/task.h"

namespace artemis {

class Mcu;

enum class EventKind : std::uint8_t { kStartTask = 0, kEndTask = 1 };

const char* EventKindName(EventKind kind);

// The persistent MonitorEvent structure (Figure 8, `MonitorEvent_t`).
struct MonitorEvent {
  EventKind kind = EventKind::kStartTask;
  SimTime timestamp = 0;
  TaskId task = kInvalidTask;
  // Path (1-based) within which the task is executing. Needed because of
  // path merging: a property qualified with "Path: 2" only applies when its
  // task runs as part of path 2 (Figure 5, line 6).
  PathId path = kNoPath;
  // Monotonic id assigned by the kernel per delivered event; resumed
  // deliveries of the same event reuse the id so monitors can complete
  // interrupted processing exactly once (Section 4.2.3).
  std::uint64_t seq = 0;
  // Monitored dependent variable committed by the task (dpData), if any.
  bool has_dep_data = false;
  double dep_data = 0.0;
  // Stored-energy fraction at event time, for the Section 4.2.2
  // energy-awareness extension property.
  double energy_fraction = 1.0;
};

// Corrective actions (Table 1).
enum class ActionType : std::uint8_t {
  kNone = 0,
  kRestartTask,
  kSkipTask,
  kRestartPath,
  kSkipPath,
  kCompletePath,
};

const char* ActionTypeName(ActionType action);

// Severity used by the default arbitration policy: larger wins.
int ActionSeverity(ActionType action);

struct MonitorVerdict {
  ActionType action = ActionType::kNone;
  // Explicit target for path actions ("Path: 2" in Figure 5); kNoPath means
  // the current path.
  PathId target_path = kNoPath;
  // Diagnostics for traces: which property on which task fired.
  std::string property;

  bool violated() const { return action != ActionType::kNone; }
};

// Outcome of a checker invocation. When status != kOk the kernel reboots
// its loop; the checker must have persisted enough progress to resume the
// same event on the next call.
struct CheckOutcome {
  // ExecStatus from src/sim/mcu.h, widened here to avoid a header cycle.
  int status = 0;  // 0 == ExecStatus::kOk
  MonitorVerdict verdict;
};

class PropertyChecker {
 public:
  virtual ~PropertyChecker() = default;

  // One-time hard reset at the application's very first boot (Figure 8,
  // resetMonitor).
  virtual void HardReset(Mcu& mcu) = 0;

  // Called at every reboot before the main loop resumes (Figure 8,
  // monitorFinalize). Implementations complete any interrupted event
  // processing here or lazily on the next OnEvent with the same seq.
  virtual void Finalize(Mcu& mcu) = 0;

  // Figure 10 callMonitor. May be re-invoked with the same event (same seq)
  // after a power failure; must resume, not restart.
  virtual CheckOutcome OnEvent(const MonitorEvent& event, Mcu& mcu) = 0;

  // The runtime restarted `path`; monitors linked to its already-started
  // tasks must re-initialize (Section 3.3).
  virtual void OnPathRestart(PathId path, Mcu& mcu) = 0;

  virtual std::string Name() const = 0;
};

// A checker that never reports violations; zero overhead beyond the call.
class NullChecker : public PropertyChecker {
 public:
  void HardReset(Mcu&) override {}
  void Finalize(Mcu&) override {}
  CheckOutcome OnEvent(const MonitorEvent&, Mcu&) override { return CheckOutcome{}; }
  void OnPathRestart(PathId, Mcu&) override {}
  std::string Name() const override { return "null"; }
};

}  // namespace artemis

#endif  // SRC_KERNEL_CHECKER_H_
