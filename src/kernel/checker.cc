#include "src/kernel/checker.h"

namespace artemis {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kStartTask:
      return "StartTask";
    case EventKind::kEndTask:
      return "EndTask";
  }
  return "?";
}

const char* ActionTypeName(ActionType action) {
  switch (action) {
    case ActionType::kNone:
      return "none";
    case ActionType::kRestartTask:
      return "restartTask";
    case ActionType::kSkipTask:
      return "skipTask";
    case ActionType::kRestartPath:
      return "restartPath";
    case ActionType::kSkipPath:
      return "skipPath";
    case ActionType::kCompletePath:
      return "completePath";
  }
  return "?";
}

int ActionSeverity(ActionType action) {
  switch (action) {
    case ActionType::kNone:
      return 0;
    case ActionType::kRestartTask:
      return 1;
    case ActionType::kSkipTask:
      return 2;
    case ActionType::kRestartPath:
      return 3;
    case ActionType::kSkipPath:
      return 4;
    case ActionType::kCompletePath:
      return 5;
  }
  return 0;
}

}  // namespace artemis
