#include "src/obs/perfetto_sink.h"

#include <cstdio>
#include <sstream>

#include "src/obs/jsonl_sink.h"  // JsonEscape

namespace artemis::obs {
namespace {

// Track (thread) ids within the single trace process.
int Tid(Component component) { return static_cast<int>(component) + 1; }

std::string Fixed(double v, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

PerfettoSink::PerfettoSink(std::ostream& out, std::vector<std::string> task_names)
    : out_(out), task_names_(std::move(task_names)) {}

void PerfettoSink::OnEvent(const Event& event) { buffered_.push_back(event); }

void PerfettoSink::WriteRecord(const std::string& record) {
  out_ << (first_record_ ? "\n" : ",\n") << record;
  first_record_ = false;
}

std::string PerfettoSink::SliceName(const Event& e) const {
  if (e.task != kObsNoTask && e.task < task_names_.size()) {
    return task_names_[e.task];
  }
  if (e.task != kObsNoTask) {
    return "task#" + std::to_string(e.task);
  }
  return KindName(e.kind);
}

void PerfettoSink::WriteEvent(const Event& e) {
  const int tid = Tid(ComponentOf(e.kind));
  std::ostringstream args;
  args << "{\"kind\":\"" << KindName(e.kind) << "\",\"device_t\":" << e.time;
  if (e.path != kObsNoPath) {
    args << ",\"path\":" << e.path;
  }
  if (e.attempt != 0) {
    args << ",\"attempt\":" << e.attempt;
  }
  if (e.seq != 0) {
    args << ",\"seq\":" << e.seq;
  }
  if (e.value != 0.0) {
    args << ",\"value\":" << Fixed(e.value, "%.4f");
  }
  if (!e.action.empty()) {
    args << ",\"action\":\"" << JsonEscape(e.action) << '"';
  }
  if (!e.detail.empty()) {
    args << ",\"detail\":\"" << JsonEscape(e.detail) << '"';
  }
  args << '}';

  std::ostringstream rec;
  switch (e.kind) {
    case Kind::kTaskStart:
      // Opens a slice; the matching end/abort emits the "X" record.
      open_tasks_[e.task] = e.true_time;
      return;
    case Kind::kTaskEnd:
    case Kind::kTaskAborted: {
      SimTime start = e.true_time;
      if (const auto it = open_tasks_.find(e.task); it != open_tasks_.end()) {
        start = it->second;
        open_tasks_.erase(it);
      }
      rec << "{\"name\":\"" << JsonEscape(SliceName(e))
          << (e.kind == Kind::kTaskAborted ? " (aborted)" : "") << "\",\"ph\":\"X\",\"ts\":"
          << start << ",\"dur\":" << (e.true_time - start) << ",\"pid\":1,\"tid\":" << tid
          << ",\"args\":" << args.str() << '}';
      break;
    }
    case Kind::kSimPowerFail:
      // The outage itself as a slice on the sim track: the charge segment.
      rec << "{\"name\":\"charging\",\"ph\":\"X\",\"ts\":" << e.true_time
          << ",\"dur\":" << e.duration << ",\"pid\":1,\"tid\":" << tid
          << ",\"args\":" << args.str() << '}';
      break;
    case Kind::kMonitorVerdict: {
      // Width = the per-event monitor cycle cost paid just before the
      // verdict was produced.
      const SimTime start = e.true_time >= e.duration ? e.true_time - e.duration : 0;
      rec << "{\"name\":\"" << JsonEscape(e.detail.empty() ? "verdict" : e.detail)
          << "\",\"ph\":\"X\",\"ts\":" << start << ",\"dur\":" << e.duration
          << ",\"pid\":1,\"tid\":" << tid << ",\"args\":" << args.str() << '}';
      break;
    }
    default:
      rec << "{\"name\":\"" << JsonEscape(KindName(e.kind)) << "\",\"ph\":\"i\",\"ts\":"
          << e.true_time << ",\"pid\":1,\"tid\":" << tid << ",\"s\":\"t\",\"args\":"
          << args.str() << '}';
  }
  WriteRecord(rec.str());

  // Counter tracks: stored-charge fraction and cumulative energy.
  if (e.energy_fraction >= 0.0) {
    WriteRecord("{\"name\":\"charge-fraction\",\"ph\":\"C\",\"ts\":" +
                std::to_string(e.true_time) + ",\"pid\":1,\"args\":{\"fraction\":" +
                Fixed(e.energy_fraction, "%.6f") + "}}");
  }
  if (e.energy_uj >= 0.0) {
    WriteRecord("{\"name\":\"energy-uj\",\"ph\":\"C\",\"ts\":" + std::to_string(e.true_time) +
                ",\"pid\":1,\"args\":{\"uJ\":" + Fixed(e.energy_uj, "%.4f") + "}}");
  }
}

void PerfettoSink::Flush() {
  if (flushed_) {
    return;
  }
  flushed_ = true;
  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  WriteRecord("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
              "\"args\":{\"name\":\"artemis\"}}");
  for (const Component c : {Component::kSim, Component::kKernel, Component::kMonitor}) {
    WriteRecord("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
                std::to_string(Tid(c)) + ",\"args\":{\"name\":\"" +
                std::string(ComponentName(c)) + "\"}}");
  }
  for (const Event& event : buffered_) {
    WriteEvent(event);
  }
  out_ << "\n]}\n";
  out_.flush();
}

}  // namespace artemis::obs
