// Deterministic JSONL exporter: one JSON object per line, a versioned
// header line first, then one line per event in publish order. Identical
// runs produce byte-identical output (fixed key order, fixed float
// precision, no host timestamps), which is what `artemisc trace diff` and
// the golden-trace regression test rely on. Schema reference:
// docs/tracing.md.
#ifndef SRC_OBS_JSONL_SINK_H_
#define SRC_OBS_JSONL_SINK_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/obs/bus.h"

namespace artemis::obs {

// Current schema identifier, emitted in the header line. Bump on any
// breaking change to field names or formatting.
inline constexpr const char* kJsonlSchema = "artemis-trace/1";

struct JsonlOptions {
  // Metadata for the header line; empty fields are omitted.
  std::string app;       // demo app name
  std::string power;     // power-model name ("fixed-charge", "always-on", ...)
  std::string schedule;  // human-readable schedule knob ("6min", "continuous")
  std::string backend;   // monitor backend name
  // Task names indexed by TaskId; when set, event lines carry "name".
  std::vector<std::string> task_names;
};

class JsonlSink : public Sink {
 public:
  // `out` must outlive the sink. The header line is written immediately.
  JsonlSink(std::ostream& out, JsonlOptions options = {});

  void OnEvent(const Event& event) override;
  void Flush() override;

  std::uint64_t lines_written() const { return lines_; }

  // Renders one event as its JSONL line (no trailing newline). Exposed so
  // tests can assert on single-event serialization.
  static std::string EventLine(const Event& event,
                               const std::vector<std::string>& task_names);

 private:
  std::ostream& out_;
  JsonlOptions options_;
  std::uint64_t lines_ = 0;
};

// JSON string escaping shared by the JSONL and Perfetto exporters.
std::string JsonEscape(const std::string& s);

}  // namespace artemis::obs

#endif  // SRC_OBS_JSONL_SINK_H_
