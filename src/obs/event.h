// The unified observability event: one record type that the sim, kernel,
// and monitor layers all publish into the cross-layer EventBus
// (src/obs/bus.h). This is the exportable superset of the kernel-local
// ExecutionTrace: it additionally carries sim-layer power events (brownout,
// recharge segments) and monitor internals (event delivery, verdicts,
// per-event cycle cost), plus cumulative energy / stored-charge samples so
// exporters can render counter tracks.
//
// Layering: this header depends only on src/base so that src/sim can
// publish without a dependency cycle (kernel and monitor sit above sim).
// Task/path ids are therefore plain integers mirroring the kernel's
// TaskId/PathId typedefs; corrective actions travel as their display names.
#ifndef SRC_OBS_EVENT_H_
#define SRC_OBS_EVENT_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

#include "src/base/time.h"

namespace artemis::obs {

// Every event kind the bus carries, grouped by publishing layer. Names
// (KindName) are dotted "<component>.<event>" strings; they are part of the
// versioned JSONL schema (docs/tracing.md) — append new kinds, never rename.
enum class Kind : std::uint8_t {
  // ---- sim layer (published by Mcu) ----
  kSimPowerFail = 0,  // brownout: duration = outage/charge segment length
  kSimBoot,           // device restored after the charge segment

  // ---- kernel layer (mirrors TraceKind, plus the commit event) ----
  kKernelBoot,
  kTaskStart,
  kTaskEnd,
  kTaskAborted,
  kViolation,
  kActionApplied,
  kPathStart,
  kPathRestart,
  kPathSkip,
  kPathCompleteUnmonitored,
  kTaskSkipped,
  kAppComplete,
  kCommit,  // checkpoint commit: value = committed bytes

  // ---- monitor layer (published by MonitorSet) ----
  kMonitorDelivery,  // event handed to the monitors: detail = start/end-task
  kMonitorVerdict,   // arbitrated verdict: value = candidate count,
                     // duration = per-event monitor cycle cost (us @ 1 MHz)
  kMonitorReset,     // path restart propagated to the monitors
};

inline constexpr int kNumKinds = static_cast<int>(Kind::kMonitorReset) + 1;

enum class Component : std::uint8_t { kSim = 0, kKernel = 1, kMonitor = 2 };

// Stable dotted name, e.g. "kernel.task-start". Part of the JSONL schema.
const char* KindName(Kind kind);
// Inverse of KindName; nullopt for unknown names.
std::optional<Kind> KindFromName(std::string_view name);

Component ComponentOf(Kind kind);
const char* ComponentName(Component component);

// Mirrors of the kernel's TaskId/PathId sentinels (src/kernel/task.h).
inline constexpr std::uint32_t kObsNoTask = std::numeric_limits<std::uint32_t>::max();
inline constexpr std::uint32_t kObsNoPath = 0;

struct Event {
  Kind kind = Kind::kKernelBoot;
  SimTime time = 0;       // device-clock timestamp (what monitors see)
  SimTime true_time = 0;  // omniscient simulation time (staleness audits)
  std::uint32_t task = kObsNoTask;
  std::uint32_t path = kObsNoPath;
  std::uint32_t attempt = 0;
  std::uint64_t seq = 0;        // kernel event sequence number, 0 = none
  SimDuration duration = 0;     // kind-specific span (outage length, cycle cost)
  double value = 0.0;           // kind-specific scalar (bytes, candidate count)
  double energy_uj = -1.0;      // cumulative MCU energy at event time; <0 = absent
  double energy_fraction = -1.0;  // stored-energy fraction in [0,1]; <0 = absent
  std::string action;           // corrective-action name, "" = none
  std::string detail;           // property name or free-form note
};

}  // namespace artemis::obs

#endif  // SRC_OBS_EVENT_H_
