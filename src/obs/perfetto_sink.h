// Chrome trace-event exporter: emits a JSON document loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. One process, one track (thread)
// per component (sim / kernel / monitor), plus counter tracks for the
// stored-charge fraction and cumulative energy. Task executions render as
// complete ("X") slices on the kernel track; monitor verdicts as slices
// whose width is the per-event monitor cycle cost; everything else as
// instant events. Timestamps use the omniscient simulation clock so
// charging outages appear as gaps. Walkthrough: docs/tracing.md.
#ifndef SRC_OBS_PERFETTO_SINK_H_
#define SRC_OBS_PERFETTO_SINK_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/bus.h"

namespace artemis::obs {

class PerfettoSink : public Sink {
 public:
  // `out` must outlive the sink. Events are buffered; Flush() writes the
  // complete JSON document exactly once.
  PerfettoSink(std::ostream& out, std::vector<std::string> task_names = {});

  void OnEvent(const Event& event) override;
  void Flush() override;

 private:
  std::string SliceName(const Event& event) const;
  void WriteEvent(const Event& event);
  void WriteRecord(const std::string& record);

  std::ostream& out_;
  std::vector<std::string> task_names_;
  std::vector<Event> buffered_;
  // Open task execution: task id -> true-time of its kernel.task-start.
  std::map<std::uint32_t, SimTime> open_tasks_;
  bool first_record_ = true;
  bool flushed_ = false;
};

}  // namespace artemis::obs

#endif  // SRC_OBS_PERFETTO_SINK_H_
