#include "src/obs/event.h"

namespace artemis::obs {

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kSimPowerFail:
      return "sim.power-fail";
    case Kind::kSimBoot:
      return "sim.boot";
    case Kind::kKernelBoot:
      return "kernel.boot";
    case Kind::kTaskStart:
      return "kernel.task-start";
    case Kind::kTaskEnd:
      return "kernel.task-end";
    case Kind::kTaskAborted:
      return "kernel.task-aborted";
    case Kind::kViolation:
      return "kernel.violation";
    case Kind::kActionApplied:
      return "kernel.action";
    case Kind::kPathStart:
      return "kernel.path-start";
    case Kind::kPathRestart:
      return "kernel.path-restart";
    case Kind::kPathSkip:
      return "kernel.path-skip";
    case Kind::kPathCompleteUnmonitored:
      return "kernel.path-complete-unmonitored";
    case Kind::kTaskSkipped:
      return "kernel.task-skipped";
    case Kind::kAppComplete:
      return "kernel.app-complete";
    case Kind::kCommit:
      return "kernel.commit";
    case Kind::kMonitorDelivery:
      return "monitor.delivery";
    case Kind::kMonitorVerdict:
      return "monitor.verdict";
    case Kind::kMonitorReset:
      return "monitor.path-reset";
  }
  return "?";
}

std::optional<Kind> KindFromName(std::string_view name) {
  for (int i = 0; i < kNumKinds; ++i) {
    const Kind kind = static_cast<Kind>(i);
    if (name == KindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

Component ComponentOf(Kind kind) {
  switch (kind) {
    case Kind::kSimPowerFail:
    case Kind::kSimBoot:
      return Component::kSim;
    case Kind::kMonitorDelivery:
    case Kind::kMonitorVerdict:
    case Kind::kMonitorReset:
      return Component::kMonitor;
    default:
      return Component::kKernel;
  }
}

const char* ComponentName(Component component) {
  switch (component) {
    case Component::kSim:
      return "sim";
    case Component::kKernel:
      return "kernel";
    case Component::kMonitor:
      return "monitor";
  }
  return "?";
}

}  // namespace artemis::obs
