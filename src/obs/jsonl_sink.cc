#include "src/obs/jsonl_sink.h"

#include <cstdio>
#include <sstream>

namespace artemis::obs {
namespace {

// Fixed-precision float rendering keeps identical runs byte-identical.
std::string Num(double v, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonlSink::JsonlSink(std::ostream& out, JsonlOptions options)
    : out_(out), options_(std::move(options)) {
  std::ostringstream header;
  header << "{\"schema\":\"" << kJsonlSchema << '"';
  if (!options_.app.empty()) {
    header << ",\"app\":\"" << JsonEscape(options_.app) << '"';
  }
  if (!options_.power.empty()) {
    header << ",\"power\":\"" << JsonEscape(options_.power) << '"';
  }
  if (!options_.schedule.empty()) {
    header << ",\"schedule\":\"" << JsonEscape(options_.schedule) << '"';
  }
  if (!options_.backend.empty()) {
    header << ",\"backend\":\"" << JsonEscape(options_.backend) << '"';
  }
  if (!options_.task_names.empty()) {
    header << ",\"tasks\":[";
    for (std::size_t i = 0; i < options_.task_names.size(); ++i) {
      header << (i == 0 ? "" : ",") << '"' << JsonEscape(options_.task_names[i]) << '"';
    }
    header << ']';
  }
  header << "}";
  out_ << header.str() << '\n';
}

std::string JsonlSink::EventLine(const Event& e, const std::vector<std::string>& task_names) {
  std::ostringstream line;
  line << "{\"kind\":\"" << KindName(e.kind) << '"';
  // `t` is the device clock (what the monitors see); `tt` the omniscient
  // simulation clock. They diverge across outages (docs/tracing.md).
  line << ",\"t\":" << e.time << ",\"tt\":" << e.true_time;
  if (e.task != kObsNoTask) {
    line << ",\"task\":" << e.task;
    if (e.task < task_names.size()) {
      line << ",\"name\":\"" << JsonEscape(task_names[e.task]) << '"';
    }
  }
  if (e.path != kObsNoPath) {
    line << ",\"path\":" << e.path;
  }
  if (e.attempt != 0) {
    line << ",\"attempt\":" << e.attempt;
  }
  if (e.seq != 0) {
    line << ",\"seq\":" << e.seq;
  }
  if (e.duration != 0) {
    line << ",\"dur\":" << e.duration;
  }
  if (e.value != 0.0) {
    line << ",\"value\":" << Num(e.value, "%.4f");
  }
  if (e.energy_uj >= 0.0) {
    line << ",\"energy_uj\":" << Num(e.energy_uj, "%.4f");
  }
  if (e.energy_fraction >= 0.0) {
    line << ",\"frac\":" << Num(e.energy_fraction, "%.6f");
  }
  if (!e.action.empty()) {
    line << ",\"action\":\"" << JsonEscape(e.action) << '"';
  }
  if (!e.detail.empty()) {
    line << ",\"detail\":\"" << JsonEscape(e.detail) << '"';
  }
  line << '}';
  return line.str();
}

void JsonlSink::OnEvent(const Event& event) {
  out_ << EventLine(event, options_.task_names) << '\n';
  ++lines_;
}

void JsonlSink::Flush() { out_.flush(); }

}  // namespace artemis::obs
