#include "src/obs/trace_diff.h"

#include <sstream>

namespace artemis::obs {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos < text.size()) {
    const std::string::size_type nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

}  // namespace

TraceDiffResult DiffJsonlTraces(const std::string& left, const std::string& right) {
  const std::vector<std::string> a = SplitLines(left);
  const std::vector<std::string> b = SplitLines(right);
  TraceDiffResult result;
  result.left_lines = a.size();
  result.right_lines = b.size();
  const std::size_t max_lines = a.size() > b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < max_lines; ++i) {
    const std::string* la = i < a.size() ? &a[i] : nullptr;
    const std::string* lb = i < b.size() ? &b[i] : nullptr;
    if (la != nullptr && lb != nullptr && *la == *lb) {
      continue;
    }
    TraceDifference diff;
    diff.line = i + 1;
    diff.left = la != nullptr ? *la : "";
    diff.right = lb != nullptr ? *lb : "";
    result.differences.push_back(std::move(diff));
  }
  return result;
}

std::string RenderTraceDiff(const TraceDiffResult& result, const std::string& left_name,
                            const std::string& right_name) {
  std::ostringstream out;
  for (const TraceDifference& diff : result.differences) {
    out << "@ line " << diff.line << '\n';
    if (!diff.left.empty()) {
      out << "- " << diff.left << '\n';
    }
    if (!diff.right.empty()) {
      out << "+ " << diff.right << '\n';
    }
  }
  if (result.identical()) {
    out << "traces identical: " << left_name << " == " << right_name << " ("
        << result.left_lines << " lines)\n";
  } else {
    out << result.differences.size() << " difference(s) between " << left_name << " ("
        << result.left_lines << " lines) and " << right_name << " (" << result.right_lines
        << " lines)\n";
  }
  return out.str();
}

}  // namespace artemis::obs
