// The cross-layer event bus. Publishers (Mcu, IntermittentKernel,
// MonitorSet) hold a nullable EventBus pointer and publish only when it is
// set, so with tracing off the whole observability layer costs one null
// check per site — no simulated cycles are ever charged, which keeps the
// Figure 14/15 overhead numbers bit-identical whether tracing is on or off.
//
// Sinks are non-owning: the experiment driver (artemisc trace, a bench, a
// test) owns both the bus and its sinks and controls flush order.
#ifndef SRC_OBS_BUS_H_
#define SRC_OBS_BUS_H_

#include <vector>

#include "src/obs/event.h"

namespace artemis::obs {

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void OnEvent(const Event& event) = 0;
  // Called once after the run; stream sinks finalize their output here.
  virtual void Flush() {}
};

class EventBus {
 public:
  // `sink` must outlive the bus; passing nullptr is ignored.
  void AddSink(Sink* sink) {
    if (sink != nullptr) {
      sinks_.push_back(sink);
    }
  }

  bool active() const { return !sinks_.empty(); }

  void Publish(const Event& event) {
    for (Sink* sink : sinks_) {
      sink->OnEvent(event);
    }
  }

  void Flush() {
    for (Sink* sink : sinks_) {
      sink->Flush();
    }
  }

 private:
  std::vector<Sink*> sinks_;
};

// In-memory sink for benches and tests: keeps every event in publish order.
class CollectingSink : public Sink {
 public:
  void OnEvent(const Event& event) override { events_.push_back(event); }
  const std::vector<Event>& events() const { return events_; }
  void Clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace artemis::obs

#endif  // SRC_OBS_BUS_H_
