// Stable textual diff of two JSONL traces, the library behind
// `artemisc trace diff` and the golden-trace regression gate. Traces are
// deterministic line streams, so a positional line-by-line comparison is
// exact: any divergence (including a different record count) is reported
// with its 1-based line number. Header lines participate too — a schema or
// metadata change is a reportable difference.
#ifndef SRC_OBS_TRACE_DIFF_H_
#define SRC_OBS_TRACE_DIFF_H_

#include <cstddef>
#include <string>
#include <vector>

namespace artemis::obs {

struct TraceDifference {
  std::size_t line = 0;     // 1-based line number
  std::string left;         // "" when the left trace has no such line
  std::string right;        // "" when the right trace has no such line
};

struct TraceDiffResult {
  std::vector<TraceDifference> differences;
  std::size_t left_lines = 0;
  std::size_t right_lines = 0;

  bool identical() const { return differences.empty(); }
};

// Compares two traces given their full contents.
TraceDiffResult DiffJsonlTraces(const std::string& left, const std::string& right);

// Renders the result the way `artemisc trace diff` prints it: a
// "- left / + right" block per difference, then a one-line summary.
std::string RenderTraceDiff(const TraceDiffResult& result, const std::string& left_name,
                            const std::string& right_name);

}  // namespace artemis::obs

#endif  // SRC_OBS_TRACE_DIFF_H_
