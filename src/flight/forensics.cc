#include "src/flight/forensics.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "src/obs/jsonl_sink.h"

namespace artemis::flight {

namespace {

std::string TaskName(const FlightMeta& meta, std::uint32_t task) {
  if (task < meta.task_names.size()) {
    return meta.task_names[task];
  }
  return "task" + std::to_string(task);
}

std::string Frac3(std::uint32_t fraction_milli) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(fraction_milli) / 1000.0);
  return buf;
}

// Spec hashes render as fixed-width hex so timelines and dumps line up.
std::string Hex16(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

const char* ActionCodeName(std::uint8_t code) {
  switch (code) {
    case 0:
      return "none";
    case 1:
      return "restartTask";
    case 2:
      return "skipTask";
    case 3:
      return "restartPath";
    case 4:
      return "skipPath";
    case 5:
      return "completePath";
  }
  return "unknown";
}

FlightMeta MetaFromRecorder(const FlightRecorder& recorder) {
  FlightMeta meta;
  meta.level = FlightLevelName(recorder.level());
  meta.capacity = recorder.capacity();
  meta.reboots = recorder.current_epoch();
  meta.stats = recorder.stats();
  return meta;
}

std::string RenderDumpJsonl(const std::vector<FlightRecord>& records,
                            const FlightMeta& meta) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kFlightSchema << "\"";
  if (!meta.app.empty()) {
    out << ",\"app\":\"" << obs::JsonEscape(meta.app) << "\"";
  }
  if (!meta.power.empty()) {
    out << ",\"power\":\"" << obs::JsonEscape(meta.power) << "\"";
  }
  if (!meta.schedule.empty()) {
    out << ",\"schedule\":\"" << obs::JsonEscape(meta.schedule) << "\"";
  }
  if (!meta.backend.empty()) {
    out << ",\"backend\":\"" << obs::JsonEscape(meta.backend) << "\"";
  }
  out << ",\"level\":\"" << meta.level << "\""
      << ",\"capacity\":" << meta.capacity << ",\"reboots\":" << meta.reboots
      << ",\"sealed\":" << meta.stats.records_sealed
      << ",\"aborted\":" << meta.stats.appends_aborted
      << ",\"evicted\":" << meta.stats.records_evicted
      << ",\"dropped\":" << meta.stats.records_dropped
      << ",\"bytes_sealed\":" << meta.stats.bytes_sealed
      << ",\"decoded\":" << records.size();
  if (!meta.task_names.empty()) {
    out << ",\"tasks\":[";
    for (std::size_t i = 0; i < meta.task_names.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\"" << obs::JsonEscape(meta.task_names[i]) << "\"";
    }
    out << "]";
  }
  out << "}\n";

  for (const FlightRecord& r : records) {
    out << "{\"kind\":\"" << RecordKindName(r.kind) << "\",\"t\":" << r.time;
    switch (r.kind) {
      case RecordKind::kBoot:
        out << ",\"epoch\":" << r.epoch;
        break;
      case RecordKind::kTaskStart:
        out << ",\"seq\":" << r.seq << ",\"task\":" << r.task << ",\"name\":\""
            << obs::JsonEscape(TaskName(meta, r.task)) << "\",\"path\":" << r.path
            << ",\"attempt\":" << r.attempt;
        break;
      case RecordKind::kTaskEnd:
        out << ",\"seq\":" << r.seq << ",\"task\":" << r.task << ",\"name\":\""
            << obs::JsonEscape(TaskName(meta, r.task)) << "\",\"path\":" << r.path;
        break;
      case RecordKind::kCommit:
        out << ",\"seq\":" << r.seq << ",\"task\":" << r.task << ",\"name\":\""
            << obs::JsonEscape(TaskName(meta, r.task)) << "\",\"bytes\":" << r.bytes;
        break;
      case RecordKind::kVerdict:
        out << ",\"seq\":" << r.seq << ",\"task\":" << r.task << ",\"name\":\""
            << obs::JsonEscape(TaskName(meta, r.task)) << "\",\"action\":\""
            << ActionCodeName(r.action) << "\",\"target_path\":" << r.target_path;
        break;
      case RecordKind::kChargeSnapshot:
        out << ",\"epoch\":" << r.epoch << ",\"frac\":" << Frac3(r.fraction_milli);
        break;
      case RecordKind::kSwapEpoch:
        out << ",\"old_hash\":\"" << Hex16(r.old_hash) << "\",\"new_hash\":\""
            << Hex16(r.new_hash) << "\",\"image_epoch\":" << r.image_epoch;
        break;
    }
    out << "}\n";
  }
  return out.str();
}

std::string RenderTimeline(const std::vector<FlightRecord>& records,
                           const FlightMeta& meta) {
  std::ostringstream out;
  out << "== flight timeline: " << records.size() << " record(s), "
      << meta.reboots << " reboot(s)";
  if (!meta.app.empty()) {
    out << ", app=" << meta.app;
  }
  out << ", level=" << meta.level << " ==\n";
  bool in_epoch = false;
  std::uint32_t last_epoch = 0;
  if (!records.empty() && records.front().kind != RecordKind::kBoot) {
    out << "epoch ?  (boot record evicted; oldest surviving records follow)\n";
    in_epoch = true;
  }
  for (const FlightRecord& r : records) {
    if (r.kind == RecordKind::kBoot) {
      if (in_epoch) {
        out << "  -- reboot --\n";
      }
      out << "epoch " << r.epoch << "  boot @ " << FormatTimestamp(r.time);
      if (in_epoch && r.epoch > last_epoch + 1) {
        out << "   [" << (r.epoch - last_epoch - 1)
            << " epoch(s) lost: boot records evicted or never written]";
      } else if (!in_epoch && r.epoch > 0) {
        out << "   [" << r.epoch << " earlier epoch(s) evicted]";
      }
      out << "\n";
      in_epoch = true;
      last_epoch = r.epoch;
      continue;
    }
    out << "  " << FormatTimestamp(r.time) << " " << RecordKindName(r.kind);
    switch (r.kind) {
      case RecordKind::kTaskStart:
        out << " seq=" << r.seq << " " << TaskName(meta, r.task) << " path=" << r.path
            << " attempt=" << r.attempt;
        break;
      case RecordKind::kTaskEnd:
        out << " seq=" << r.seq << " " << TaskName(meta, r.task) << " path=" << r.path;
        break;
      case RecordKind::kCommit:
        out << " seq=" << r.seq << " " << TaskName(meta, r.task) << " bytes=" << r.bytes;
        break;
      case RecordKind::kVerdict:
        out << " seq=" << r.seq << " " << TaskName(meta, r.task) << " action="
            << ActionCodeName(r.action);
        if (r.target_path != 0) {
          out << " target_path=" << r.target_path;
        }
        break;
      case RecordKind::kChargeSnapshot:
        out << " frac=" << Frac3(r.fraction_milli);
        break;
      case RecordKind::kSwapEpoch:
        out << " spec " << Hex16(r.old_hash) << " -> " << Hex16(r.new_hash)
            << " image-epoch=" << r.image_epoch
            << "   [monitor image replaced; verdicts after this line are the new spec's]";
        break;
      case RecordKind::kBoot:
        break;
    }
    out << "\n";
  }
  out << "lost tail: " << meta.stats.appends_aborted
      << " append(s) aborted by power failure, " << meta.stats.records_evicted
      << " record(s) evicted by the ring, " << meta.stats.records_dropped
      << " dropped oversize\n";
  return out.str();
}

AuditReport Audit(const std::vector<FlightRecord>& records,
                  const std::vector<obs::Event>& bus_events) {
  AuditReport report;
  // Boot matching is positional: flight epoch e > 0 corresponds to the e-th
  // sim.boot; epoch 0 to the initial kernel.boot. Collect the stored-energy
  // fraction each boot published for the charge-snapshot cross-check.
  std::vector<double> boot_fracs;
  bool saw_kernel_boot = false;
  for (const obs::Event& e : bus_events) {
    if (e.kind == obs::Kind::kKernelBoot && !saw_kernel_boot) {
      saw_kernel_boot = true;
      boot_fracs.push_back(e.energy_fraction);
    } else if (e.kind == obs::Kind::kSimBoot) {
      boot_fracs.push_back(e.energy_fraction);
    }
  }
  std::vector<bool> consumed(bus_events.size(), false);
  auto find_match = [&](auto&& pred) {
    for (std::size_t i = 0; i < bus_events.size(); ++i) {
      if (!consumed[i] && pred(bus_events[i])) {
        consumed[i] = true;
        return true;
      }
    }
    return false;
  };
  for (const FlightRecord& r : records) {
    ++report.checked;
    bool ok = false;
    std::string expect;
    switch (r.kind) {
      case RecordKind::kBoot:
        ok = r.epoch < boot_fracs.size();
        expect = "boot event for epoch " + std::to_string(r.epoch);
        break;
      case RecordKind::kTaskStart:
        ok = find_match([&](const obs::Event& e) {
          return e.kind == obs::Kind::kTaskStart && e.seq == r.seq && e.task == r.task &&
                 e.path == r.path && e.attempt == r.attempt;
        });
        expect = "kernel.task-start seq=" + std::to_string(r.seq);
        break;
      case RecordKind::kTaskEnd:
        ok = find_match([&](const obs::Event& e) {
          return e.kind == obs::Kind::kTaskEnd && e.seq == r.seq && e.task == r.task &&
                 e.path == r.path;
        });
        expect = "kernel.task-end seq=" + std::to_string(r.seq);
        break;
      case RecordKind::kCommit:
        ok = find_match([&](const obs::Event& e) {
          return e.kind == obs::Kind::kCommit && e.seq == r.seq && e.task == r.task &&
                 e.value == static_cast<double>(r.bytes);
        });
        expect = "kernel.commit seq=" + std::to_string(r.seq) + " bytes=" +
                 std::to_string(r.bytes);
        break;
      case RecordKind::kVerdict:
        ok = find_match([&](const obs::Event& e) {
          return e.kind == obs::Kind::kMonitorVerdict && e.seq == r.seq &&
                 e.action == ActionCodeName(r.action);
        });
        expect = std::string("monitor.verdict seq=") + std::to_string(r.seq) +
                 " action=" + ActionCodeName(r.action);
        break;
      case RecordKind::kChargeSnapshot: {
        // Taken right after the boot record, so it must sit within a small
        // drain (the reboot restore cost) of what the boot event published.
        const double frac = static_cast<double>(r.fraction_milli) / 1000.0;
        ok = r.epoch < boot_fracs.size() &&
             std::fabs(frac - boot_fracs[r.epoch]) <= 0.05;
        expect = "boot energy fraction near " + Frac3(r.fraction_milli) +
                 " for epoch " + std::to_string(r.epoch);
        break;
      }
      case RecordKind::kSwapEpoch:
        // The swap commit is device-internal truth — the obs bus has no
        // counterpart event (the record's seal *is* the commit), so the
        // audit accepts it and relies on the image-epoch monotonicity the
        // decoder already enforces structurally.
        ok = true;
        break;
    }
    if (ok) {
      ++report.matched;
    } else {
      report.mismatches.push_back(std::string(RecordKindName(r.kind)) + " @ " +
                                  FormatTimestamp(r.time) + ": no bus event matching " +
                                  expect);
    }
  }
  return report;
}

std::string RenderAudit(const AuditReport& report, const FlightMeta& meta) {
  std::ostringstream out;
  out << "== flight audit: " << report.matched << "/" << report.checked
      << " record(s) matched against the obs-bus trace (level=" << meta.level
      << ") ==\n";
  for (const std::string& m : report.mismatches) {
    out << "MISMATCH: " << m << "\n";
  }
  out << (report.ok() ? "audit: OK\n" : "audit: FAILED\n");
  return out.str();
}

std::vector<Finding> Detect(const std::vector<FlightRecord>& records,
                            const DetectOptions& options) {
  std::vector<Finding> findings;
  // Non-termination: a task-start observed at attempt >= threshold means the
  // task kept restarting without completing. Report the worst attempt per
  // (task, path) site.
  std::map<std::pair<std::uint32_t, std::uint32_t>, FlightRecord> worst;
  for (const FlightRecord& r : records) {
    if (r.kind != RecordKind::kTaskStart || r.attempt < options.min_attempts) {
      continue;
    }
    auto key = std::make_pair(r.task, r.path);
    auto it = worst.find(key);
    if (it == worst.end() || r.attempt > it->second.attempt) {
      worst[key] = r;
    }
  }
  for (const auto& [key, r] : worst) {
    findings.push_back({"non-termination", r.time,
                        "task " + std::to_string(r.task) + " path " +
                            std::to_string(r.path) + " reached attempt " +
                            std::to_string(r.attempt) + " without completing"});
  }
  // Restart-without-progress: consecutive boot epochs with no commit or
  // task-end sealed between them.
  std::uint32_t barren = 0;
  SimTime barren_start = 0;
  bool progressed = true;
  for (const FlightRecord& r : records) {
    if (r.kind == RecordKind::kBoot) {
      if (progressed) {
        barren = 1;
        barren_start = r.time;
      } else {
        ++barren;
        if (barren == options.barren_epochs) {
          findings.push_back({"no-progress", barren_start,
                              std::to_string(barren) +
                                  " consecutive epoch(s) without a commit or task "
                                  "completion starting at " +
                                  FormatTimestamp(barren_start)});
        }
      }
      progressed = false;
    } else if (r.kind == RecordKind::kCommit || r.kind == RecordKind::kTaskEnd) {
      progressed = true;
    }
  }
  // MITD gap: silence between consecutive records longer than the budget.
  for (std::size_t i = 1; i < records.size(); ++i) {
    const SimTime prev = records[i - 1].time;
    const SimTime cur = records[i].time;
    if (cur > prev && cur - prev > options.max_gap) {
      findings.push_back({"mitd-gap", prev,
                          "no record for " + FormatDuration(cur - prev) + " after " +
                              FormatTimestamp(prev)});
    }
  }
  return findings;
}

std::string RenderDetect(const std::vector<Finding>& findings, const FlightMeta& meta) {
  std::ostringstream out;
  out << "== flight detect: " << findings.size() << " finding(s) (level=" << meta.level
      << ") ==\n";
  for (const Finding& f : findings) {
    out << f.signature << " @ " << FormatTimestamp(f.time) << ": " << f.message << "\n";
  }
  if (findings.empty()) {
    out << "detect: no signatures fired\n";
  }
  return out.str();
}

}  // namespace artemis::flight
