#include "src/flight/decoder.h"

#include <cstddef>

namespace artemis::flight {

StatusOr<std::vector<FlightRecord>> DecodeRing(const RingImage& image) {
  const std::size_t cap = image.bytes.size();
  if (cap == 0) {
    return std::vector<FlightRecord>{};
  }
  if (image.head >= cap) {
    return Status::Invalid("flight ring: head " + std::to_string(image.head) +
                           " outside capacity " + std::to_string(cap));
  }
  std::vector<FlightRecord> records;
  std::size_t pos = image.head;
  std::size_t consumed = 0;
  SimTime base = image.head_base_time;
  while (consumed < cap) {
    const std::uint8_t len = image.bytes[pos];
    if (len == 0) {
      return records;  // live terminator: end of sealed log
    }
    if (consumed + 1 + len > cap) {
      return Status::Invalid("flight ring: record at offset " + std::to_string(pos) +
                             " of length " + std::to_string(len) +
                             " overruns the ring");
    }
    std::vector<std::uint8_t> payload(len);
    for (std::size_t i = 0; i < len; ++i) {
      payload[i] = image.bytes[(pos + 1 + i) % cap];
    }
    FlightRecord record;
    if (!DecodePayload(payload.data(), payload.size(), base, &record)) {
      return Status::Invalid("flight ring: malformed payload at offset " +
                             std::to_string(pos));
    }
    base = record.time;
    records.push_back(record);
    consumed += 1 + len;
    pos = (pos + 1 + len) % cap;
  }
  // Every byte sealed and no terminator: cannot happen under the recorder's
  // reserve phase, which always keeps a terminator byte free.
  return Status::Invalid("flight ring: no terminator found");
}

}  // namespace artemis::flight
