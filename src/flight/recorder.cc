#include "src/flight/recorder.h"

#include <algorithm>
#include <cmath>

namespace artemis::flight {

const char* FlightLevelName(FlightLevel level) {
  switch (level) {
    case FlightLevel::kOff:
      return "off";
    case FlightLevel::kVerdictsOnly:
      return "verdicts";
    case FlightLevel::kFull:
      return "full";
  }
  return "unknown";
}

bool ParseFlightLevel(const std::string& text, FlightLevel* out) {
  if (text == "off") {
    *out = FlightLevel::kOff;
  } else if (text == "verdicts" || text == "verdicts-only") {
    *out = FlightLevel::kVerdictsOnly;
  } else if (text == "full") {
    *out = FlightLevel::kFull;
  } else {
    return false;
  }
  return true;
}

FlightRecorder::FlightRecorder(std::size_t capacity, FlightLevel level)
    : ring_(std::max(capacity, kMinCapacityBytes), 0), level_(level) {}

bool FlightRecorder::AppendBoot() {
  if (level_ == FlightLevel::kOff || boot_recorded()) {
    return true;
  }
  FlightRecord r;
  r.kind = RecordKind::kBoot;
  r.epoch = epoch_;
  r.time = port_->DeviceNow();
  const std::uint64_t sealed_before = stats_.records_sealed;
  const bool ok = Append(r);
  if (ok && stats_.records_sealed > sealed_before) {
    boot_epoch_sealed_ = epoch_;
  }
  return ok;
}

bool FlightRecorder::AppendTaskStart(std::uint64_t seq, std::uint32_t task,
                                     std::uint32_t path, std::uint32_t attempt) {
  if (level_ != FlightLevel::kFull) {
    return true;
  }
  FlightRecord r;
  r.kind = RecordKind::kTaskStart;
  r.time = port_->DeviceNow();
  r.seq = seq;
  r.task = task;
  r.path = path;
  r.attempt = attempt;
  return Append(r);
}

bool FlightRecorder::AppendTaskEnd(std::uint64_t seq, std::uint32_t task,
                                   std::uint32_t path) {
  if (level_ != FlightLevel::kFull) {
    return true;
  }
  FlightRecord r;
  r.kind = RecordKind::kTaskEnd;
  r.time = port_->DeviceNow();
  r.seq = seq;
  r.task = task;
  r.path = path;
  return Append(r);
}

bool FlightRecorder::AppendCommit(std::uint64_t seq, std::uint32_t task,
                                  std::uint64_t bytes) {
  if (level_ != FlightLevel::kFull) {
    return true;
  }
  FlightRecord r;
  r.kind = RecordKind::kCommit;
  r.time = port_->DeviceNow();
  r.seq = seq;
  r.task = task;
  r.bytes = bytes;
  return Append(r);
}

bool FlightRecorder::AppendVerdict(std::uint64_t seq, std::uint32_t task,
                                   std::uint8_t action, std::uint32_t target_path) {
  if (level_ == FlightLevel::kOff) {
    return true;
  }
  FlightRecord r;
  r.kind = RecordKind::kVerdict;
  r.time = port_->DeviceNow();
  r.seq = seq;
  r.task = task;
  r.action = action;
  r.target_path = target_path;
  return Append(r);
}

bool FlightRecorder::AppendSwapEpoch(std::uint64_t old_hash, std::uint64_t new_hash,
                                     std::uint32_t image_epoch) {
  if (level_ == FlightLevel::kOff) {
    return true;
  }
  FlightRecord r;
  r.kind = RecordKind::kSwapEpoch;
  r.time = port_->DeviceNow();
  r.old_hash = old_hash;
  r.new_hash = new_hash;
  r.image_epoch = image_epoch;
  return Append(r);
}

bool FlightRecorder::AppendChargeSnapshot(double fraction) {
  if (level_ != FlightLevel::kFull) {
    return true;
  }
  FlightRecord r;
  r.kind = RecordKind::kChargeSnapshot;
  r.time = port_->DeviceNow();
  r.epoch = epoch_;
  const double clamped = std::min(1.0, std::max(0.0, fraction));
  r.fraction_milli = static_cast<std::uint32_t>(std::lround(clamped * 1000.0));
  return Append(r);
}

bool FlightRecorder::EvictOldest() {
  // The head record is sealed by invariant, so this decode cannot fail; it
  // advances the decoder's time base past the record being overwritten.
  const std::size_t cap = ring_.size();
  const std::uint8_t len = ring_[head_];
  std::vector<std::uint8_t> payload(len);
  for (std::size_t i = 0; i < len; ++i) {
    payload[i] = ring_[(head_ + 1 + i) % cap];
  }
  FlightRecord evicted;
  if (DecodePayload(payload.data(), payload.size(), head_base_time_, &evicted)) {
    head_base_time_ = evicted.time;
  }
  head_ = static_cast<std::uint32_t>((head_ + 1 + len) % cap);
  used_ -= 1 + static_cast<std::size_t>(len);
  ++stats_.records_evicted;
  return port_->ChargeControlWrite();
}

bool FlightRecorder::Append(const FlightRecord& record) {
  // Phase 0: build. The encode itself costs CPU cycles; if power dies here,
  // nothing was written and the ring is untouched.
  if (!port_->ChargeRecordBuild()) {
    ++stats_.appends_aborted;
    return false;
  }
  const std::vector<std::uint8_t> payload = EncodePayload(record, last_time_);
  const std::size_t n = payload.size();
  const std::size_t cap = ring_.size();
  ++stats_.appends_attempted;
  // A record needs its seal byte, payload, and the next terminator.
  if (n > kMaxPayloadBytes || n + 2 > cap) {
    ++stats_.records_dropped;
    return true;
  }
  // Phase 1: reserve. Evict sealed records until the new one fits. Each
  // eviction leaves head_/used_ consistent, so a mid-reservation crash just
  // means some old records were reclaimed for nothing.
  while (cap - used_ < n + 2) {
    if (!EvictOldest()) {
      ++stats_.appends_aborted;
      return false;
    }
  }
  // Phase 2: payload. tail_ holds the live 0 terminator; the payload goes
  // after it, followed by the record's own terminator. Each byte is charged
  // before it is written: an interrupted charge = the byte never landed.
  for (std::size_t i = 0; i < n; ++i) {
    if (!port_->ChargeWriteByte()) {
      ++stats_.appends_aborted;
      return false;
    }
    ring_[(tail_ + 1 + i) % cap] = payload[i];
  }
  if (!port_->ChargeWriteByte()) {
    ++stats_.appends_aborted;
    return false;
  }
  ring_[(tail_ + 1 + n) % cap] = 0;
  // Phase 3: seal. A single byte write over the old terminator publishes the
  // record; everything before this point is invisible to the decoder.
  if (!port_->ChargeWriteByte()) {
    ++stats_.appends_aborted;
    return false;
  }
  ring_[tail_] = static_cast<std::uint8_t>(n);
  tail_ = static_cast<std::uint32_t>((tail_ + 1 + n) % cap);
  used_ += 1 + n;
  last_time_ = record.time;
  ++stats_.records_sealed;
  stats_.bytes_sealed += 1 + n;
  return true;
}

RingImage FlightRecorder::Image() const {
  RingImage image;
  image.bytes = ring_;
  image.head = head_;
  image.head_base_time = head_base_time_;
  return image;
}

}  // namespace artemis::flight
