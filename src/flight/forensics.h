// Host-side forensics over a recovered flight log: the library behind
// `artemisc forensics` (dump / timeline / audit / detect). Everything here
// is deterministic — fixed key order, fixed float precision, no host
// timestamps — so the dump output can be golden-tested byte-for-byte
// (tests/golden/flight/health_6min.jsonl).
#ifndef SRC_FLIGHT_FORENSICS_H_
#define SRC_FLIGHT_FORENSICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/flight/record.h"
#include "src/flight/recorder.h"
#include "src/obs/event.h"

namespace artemis::flight {

// Current dump schema identifier. Bump on any breaking change.
inline constexpr const char* kFlightSchema = "artemis-flight/1";

// Stable display name for a verdict record's action code. The codes are
// part of the wire format, so the name table lives here rather than
// depending on the kernel's ActionType enum; the strings match
// ActionTypeName so `audit` can compare against obs-bus events directly.
const char* ActionCodeName(std::uint8_t code);

// Run metadata for the dump header plus recorder-side counters.
struct FlightMeta {
  std::string app;
  std::string power;
  std::string schedule;
  std::string backend;
  std::string level;
  std::size_t capacity = 0;
  std::uint32_t reboots = 0;  // recorder epoch counter (power failures seen)
  FlightStats stats;
  std::vector<std::string> task_names;
};

// Captures meta from a recorder after a run (task names added by caller).
FlightMeta MetaFromRecorder(const FlightRecorder& recorder);

// JSONL dump: versioned header line, then one line per decoded record,
// oldest first.
std::string RenderDumpJsonl(const std::vector<FlightRecord>& records,
                            const FlightMeta& meta);

// Human-readable cross-reboot reconstruction: records grouped into boot
// epochs, with epoch gaps (reboots whose boot record was lost) and the
// lost-tail counters (aborted / evicted / dropped appends) reported.
std::string RenderTimeline(const std::vector<FlightRecord>& records,
                           const FlightMeta& meta);

// ---- audit ---------------------------------------------------------------
// Cross-validates the recovered flight log against the omniscient obs-bus
// capture of the same run: every flight record must have a matching bus
// event (matching on identity fields — seq/task/path/attempt/epoch — not on
// timestamps, since appends are charged cycles after the bus publish).
// Each bus event is consumed by at most one flight record.
struct AuditReport {
  std::size_t checked = 0;
  std::size_t matched = 0;
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
};

AuditReport Audit(const std::vector<FlightRecord>& records,
                  const std::vector<obs::Event>& bus_events);

std::string RenderAudit(const AuditReport& report, const FlightMeta& meta);

// ---- detect --------------------------------------------------------------
struct DetectOptions {
  // Non-termination: a task observed at this attempt count (or higher).
  std::uint32_t min_attempts = 3;
  // Restart-without-progress: this many consecutive epochs without a single
  // commit or task completion.
  std::uint32_t barren_epochs = 3;
  // MITD gap: silence in the record stream longer than this.
  SimDuration max_gap = 5 * kMinute;
};

struct Finding {
  std::string signature;  // "non-termination" / "no-progress" / "mitd-gap"
  SimTime time = 0;       // where in the log the signature fired
  std::string message;
};

std::vector<Finding> Detect(const std::vector<FlightRecord>& records,
                            const DetectOptions& options);

std::string RenderDetect(const std::vector<Finding>& findings,
                         const FlightMeta& meta);

}  // namespace artemis::flight

#endif  // SRC_FLIGHT_FORENSICS_H_
