#include "src/flight/record.h"

namespace artemis::flight {

const char* RecordKindName(RecordKind kind) {
  switch (kind) {
    case RecordKind::kBoot:
      return "boot";
    case RecordKind::kTaskStart:
      return "task-start";
    case RecordKind::kTaskEnd:
      return "task-end";
    case RecordKind::kCommit:
      return "commit";
    case RecordKind::kVerdict:
      return "verdict";
    case RecordKind::kChargeSnapshot:
      return "charge-snapshot";
    case RecordKind::kSwapEpoch:
      return "swap-epoch";
  }
  return "unknown";
}

bool IsValidRecordKind(std::uint8_t value) {
  return value >= static_cast<std::uint8_t>(RecordKind::kBoot) &&
         value <= static_cast<std::uint8_t>(RecordKind::kSwapEpoch);
}

void PutVarint(std::vector<std::uint8_t>* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(value));
}

bool GetVarint(const std::uint8_t* data, std::size_t size, std::size_t* pos,
               std::uint64_t* out) {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= size) {
      return false;  // truncated
    }
    const std::uint8_t byte = data[(*pos)++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
  }
  return false;  // overlong: more than 10 continuation bytes
}

std::uint64_t ZigZagEncode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t ZigZagDecode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^ -static_cast<std::int64_t>(value & 1);
}

std::vector<std::uint8_t> EncodePayload(const FlightRecord& record, SimTime last_time) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(record.kind));
  const std::uint64_t delta =
      ZigZagEncode(static_cast<std::int64_t>(record.time) -
                   static_cast<std::int64_t>(last_time));
  switch (record.kind) {
    case RecordKind::kBoot:
      PutVarint(&out, record.epoch);
      PutVarint(&out, static_cast<std::uint64_t>(record.time));
      break;
    case RecordKind::kTaskStart:
      PutVarint(&out, delta);
      PutVarint(&out, record.seq);
      PutVarint(&out, record.task);
      PutVarint(&out, record.path);
      PutVarint(&out, record.attempt);
      break;
    case RecordKind::kTaskEnd:
      PutVarint(&out, delta);
      PutVarint(&out, record.seq);
      PutVarint(&out, record.task);
      PutVarint(&out, record.path);
      break;
    case RecordKind::kCommit:
      PutVarint(&out, delta);
      PutVarint(&out, record.seq);
      PutVarint(&out, record.task);
      PutVarint(&out, record.bytes);
      break;
    case RecordKind::kVerdict:
      PutVarint(&out, delta);
      PutVarint(&out, record.seq);
      PutVarint(&out, record.task);
      PutVarint(&out, record.action);
      PutVarint(&out, record.target_path);
      break;
    case RecordKind::kChargeSnapshot:
      PutVarint(&out, delta);
      PutVarint(&out, record.epoch);
      PutVarint(&out, record.fraction_milli);
      break;
    case RecordKind::kSwapEpoch:
      PutVarint(&out, delta);
      PutVarint(&out, record.old_hash);
      PutVarint(&out, record.new_hash);
      PutVarint(&out, record.image_epoch);
      break;
  }
  return out;
}

namespace {

bool GetU32(const std::uint8_t* data, std::size_t size, std::size_t* pos,
            std::uint32_t* out) {
  std::uint64_t wide = 0;
  if (!GetVarint(data, size, pos, &wide) || wide > 0xffffffffULL) {
    return false;
  }
  *out = static_cast<std::uint32_t>(wide);
  return true;
}

}  // namespace

bool DecodePayload(const std::uint8_t* data, std::size_t size, SimTime last_time,
                   FlightRecord* record) {
  if (size == 0 || !IsValidRecordKind(data[0])) {
    return false;
  }
  *record = FlightRecord{};
  record->kind = static_cast<RecordKind>(data[0]);
  std::size_t pos = 1;
  std::uint64_t delta = 0;
  if (record->kind != RecordKind::kBoot) {
    if (!GetVarint(data, size, &pos, &delta)) {
      return false;
    }
    record->time = static_cast<SimTime>(static_cast<std::int64_t>(last_time) +
                                        ZigZagDecode(delta));
  }
  bool ok = false;
  switch (record->kind) {
    case RecordKind::kBoot: {
      std::uint64_t abs_time = 0;
      ok = GetU32(data, size, &pos, &record->epoch) &&
           GetVarint(data, size, &pos, &abs_time);
      record->time = static_cast<SimTime>(abs_time);
      break;
    }
    case RecordKind::kTaskStart:
      ok = GetVarint(data, size, &pos, &record->seq) &&
           GetU32(data, size, &pos, &record->task) &&
           GetU32(data, size, &pos, &record->path) &&
           GetU32(data, size, &pos, &record->attempt);
      break;
    case RecordKind::kTaskEnd:
      ok = GetVarint(data, size, &pos, &record->seq) &&
           GetU32(data, size, &pos, &record->task) &&
           GetU32(data, size, &pos, &record->path);
      break;
    case RecordKind::kCommit:
      ok = GetVarint(data, size, &pos, &record->seq) &&
           GetU32(data, size, &pos, &record->task) &&
           GetVarint(data, size, &pos, &record->bytes);
      break;
    case RecordKind::kVerdict: {
      std::uint32_t action = 0;
      ok = GetVarint(data, size, &pos, &record->seq) &&
           GetU32(data, size, &pos, &record->task) &&
           GetU32(data, size, &pos, &action) &&
           GetU32(data, size, &pos, &record->target_path);
      if (ok && action > 0xff) {
        return false;
      }
      record->action = static_cast<std::uint8_t>(action);
      break;
    }
    case RecordKind::kChargeSnapshot:
      ok = GetU32(data, size, &pos, &record->epoch) &&
           GetU32(data, size, &pos, &record->fraction_milli);
      break;
    case RecordKind::kSwapEpoch:
      ok = GetVarint(data, size, &pos, &record->old_hash) &&
           GetVarint(data, size, &pos, &record->new_hash) &&
           GetU32(data, size, &pos, &record->image_epoch);
      break;
  }
  // A sealed payload is consumed exactly; trailing bytes mean corruption.
  return ok && pos == size;
}

}  // namespace artemis::flight
