// Host-side decoder for the flight-recorder ring (src/flight/recorder.h).
//
// Walks sealed records from the head until the first 0 length byte (the
// live terminator) and reconstructs absolute timestamps from the zigzag
// deltas. On a crash-truncated ring this always terminates cleanly at the
// terminator; a decode error therefore indicates real corruption and the
// torture test asserts it never happens under the two-phase commit.
#ifndef SRC_FLIGHT_DECODER_H_
#define SRC_FLIGHT_DECODER_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/flight/record.h"
#include "src/flight/recorder.h"

namespace artemis::flight {

// Decodes every sealed record in `image`, oldest first. Returns an error
// Status naming the byte offset on malformed payloads.
StatusOr<std::vector<FlightRecord>> DecodeRing(const RingImage& image);

}  // namespace artemis::flight

#endif  // SRC_FLIGHT_DECODER_H_
