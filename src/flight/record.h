// Flight-recorder wire format: the varint-encoded record types the on-device
// black box (src/flight/recorder.h) seals into its FRAM ring and the host
// decoder (src/flight/decoder.h) reads back.
//
// One record = [seal byte][payload]. The seal byte is the payload length
// (1..kMaxPayloadBytes); 0 means "unsealed / end of log" and doubles as the
// ring terminator, which is what makes the two-phase commit work: the seal
// is a single-byte FRAM write, the only atomicity assumption the protocol
// makes (docs/forensics.md).
//
// Payload layout: one kind byte, then LEB128 varints. Non-boot records carry
// their timestamp as a zigzag delta against the previous sealed record
// (clock regressions after an outage under a drifting timekeeper stay
// representable); boot records carry the absolute device time and restart
// the delta chain. Layering: this header depends only on src/base.
#ifndef SRC_FLIGHT_RECORD_H_
#define SRC_FLIGHT_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/time.h"

namespace artemis::flight {

// The seal byte is the payload length, so payloads are capped below the
// 0x01..0xFF range; every record type stays well under this.
inline constexpr std::size_t kMaxPayloadBytes = 250;

// Worst-case encoded payload across all record kinds, used by the static
// analyzer (ART014) to reject rings too small to hold one record. The
// largest encoder outputs tie at 36 bytes: kTaskStart (1 kind byte + 10
// zigzag time delta + 10 seq + 5 task + 5 path + 5 attempt) and kSwapEpoch
// (1 kind byte + 10 zigzag time delta + 10 old hash + 10 new hash + 5
// image epoch). A record additionally occupies its seal byte plus the
// ring's zero terminator, so the minimum useful capacity is this + 2.
inline constexpr std::size_t kWorstCasePayloadBytes = 36;

// Record kinds. Part of the artemis-flight/1 wire format: append new kinds,
// never renumber.
enum class RecordKind : std::uint8_t {
  kBoot = 1,            // new power life: epoch + absolute device time
  kTaskStart = 2,       // monitored StartTask boundary (seq/task/path/attempt)
  kTaskEnd = 3,         // monitored EndTask boundary
  kCommit = 4,          // checkpoint commit: committed bytes
  kVerdict = 5,         // violated monitor verdict + corrective action
  kChargeSnapshot = 6,  // stored-energy fraction sample (per boot)
  kSwapEpoch = 7,       // monitor hot-swap committed: old/new spec hashes +
                        // the new image epoch (docs/hotswap.md)
};

// Stable dotted name, e.g. "task-start"; part of the JSONL dump schema.
const char* RecordKindName(RecordKind kind);
bool IsValidRecordKind(std::uint8_t value);

// Decoded record: the superset of every kind's fields (unused fields stay
// at their defaults, mirroring obs::Event).
struct FlightRecord {
  RecordKind kind = RecordKind::kBoot;
  SimTime time = 0;                // absolute device time (reconstructed)
  std::uint32_t epoch = 0;         // boot / charge-snapshot
  std::uint64_t seq = 0;           // kernel event sequence number
  std::uint32_t task = 0;          // task-start/end, commit, verdict
  std::uint32_t path = 0;          // task-start/end
  std::uint32_t attempt = 0;       // task-start
  std::uint64_t bytes = 0;         // commit
  std::uint8_t action = 0;         // verdict: ActionType code
  std::uint32_t target_path = 0;   // verdict: explicit path target (0 = none)
  std::uint32_t fraction_milli = 0;  // charge-snapshot: fraction * 1000
  std::uint64_t old_hash = 0;      // swap-epoch: retiring image's spec hash
  std::uint64_t new_hash = 0;      // swap-epoch: installed image's spec hash
  std::uint32_t image_epoch = 0;   // swap-epoch: new image's header epoch
};

// ---- LEB128 varints ------------------------------------------------------
void PutVarint(std::vector<std::uint8_t>* out, std::uint64_t value);
// Reads a varint at *pos, advancing it. False on truncation / overlong.
bool GetVarint(const std::uint8_t* data, std::size_t size, std::size_t* pos,
               std::uint64_t* out);
std::uint64_t ZigZagEncode(std::int64_t value);
std::int64_t ZigZagDecode(std::uint64_t value);

// Encodes `record`'s payload. `last_time` is the delta base (the previous
// sealed record's timestamp); ignored for kBoot.
std::vector<std::uint8_t> EncodePayload(const FlightRecord& record, SimTime last_time);

// Decodes one payload. `last_time` is the delta base; on success the
// record's absolute time is reconstructed. False on any malformed byte —
// the torture test asserts this never fires on a crash-truncated ring.
bool DecodePayload(const std::uint8_t* data, std::size_t size, SimTime last_time,
                   FlightRecord* record);

}  // namespace artemis::flight

#endif  // SRC_FLIGHT_RECORD_H_
