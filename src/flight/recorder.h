// On-device flight recorder: a fixed-budget ring of sealed records in FRAM
// that survives power failures at any cycle offset.
//
// Crash-consistency protocol (two-phase commit, docs/forensics.md):
//   1. reserve  — evict sealed records from the head until the new record
//                 plus its trailing terminator fit;
//   2. payload  — write the payload bytes one at a time *after* the ring's
//                 terminator byte, then write the next terminator (0);
//   3. seal     — publish the record with a single-byte length write over
//                 the old terminator.
// Every byte is charged through a FlightPort before it is written; an
// interrupted charge means the byte never became durable and the append
// aborts. Because the seal is the last write and is one FRAM byte (the only
// atomicity assumption), a crash at any point leaves the log as a run of
// sealed records followed by a 0 terminator — truncated, never corrupt.
// Partial payload bytes may exist past the terminator but the decoder never
// looks at them.
//
// Re-entrancy: a failed charge inside an append triggers the Mcu reboot
// path, which may append a boot record *during* the outer append. This is
// safe by construction: the nested append sees a consistent ring (the outer
// append has only performed durable, self-consistent steps), and when the
// outer append resumes it aborts immediately on its failed charge without
// writing anything.
//
// tail_/used_/last_time_ are kept in ordinary members for simulation speed;
// on hardware they are derivable by scanning sealed records from head_, so
// only head_, head_base_time_ and epoch_ need dedicated FRAM control words.
#ifndef SRC_FLIGHT_RECORDER_H_
#define SRC_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/flight/record.h"

namespace artemis::flight {

// What the recorder keeps. Boot records and violated verdicts are the
// minimum useful black box; kFull adds task boundaries, commits and charge
// snapshots.
enum class FlightLevel {
  kOff = 0,
  kVerdictsOnly = 1,
  kFull = 2,
};

const char* FlightLevelName(FlightLevel level);
// Parses "off" / "verdicts" / "full"; false on anything else.
bool ParseFlightLevel(const std::string& text, FlightLevel* out);

// The recorder's window onto the simulated device. Charges return false when
// the power failed (or the MCU starved) mid-charge — the cycles were NOT
// fully spent and nothing may be written. The cost-model constants live with
// the implementor (Mcu maps these to CostModel's flight_* fields), keeping
// src/flight free of any sim dependency.
class FlightPort {
 public:
  virtual ~FlightPort() = default;
  // Encoding a record into its varint payload (CPU work).
  virtual bool ChargeRecordBuild() = 0;
  // One FRAM byte write (NVM write latency under the cost model).
  virtual bool ChargeWriteByte() = 0;
  // A control-word update: head advance per evicted record.
  virtual bool ChargeControlWrite() = 0;
  virtual SimTime DeviceNow() = 0;
};

struct FlightStats {
  std::uint64_t appends_attempted = 0;  // gated appends that reached the ring
  std::uint64_t records_sealed = 0;
  std::uint64_t appends_aborted = 0;    // power failure mid-append
  std::uint64_t records_evicted = 0;    // overwritten to make room
  std::uint64_t records_dropped = 0;    // payload could never fit the ring
  std::uint64_t bytes_sealed = 0;       // seal byte + payload, cumulative
};

// Host-side snapshot of the persistent state, the decoder's input.
struct RingImage {
  std::vector<std::uint8_t> bytes;
  std::uint32_t head = 0;
  SimTime head_base_time = 0;  // delta base for the record at head
};

class FlightRecorder {
 public:
  // `capacity` is the ring's byte budget. The owner (Mcu) accounts the NVM
  // allocation; the recorder only needs the bytes. Rings smaller than
  // kMinCapacityBytes are clamped up so a boot record always fits.
  explicit FlightRecorder(std::size_t capacity, FlightLevel level);

  static constexpr std::size_t kMinCapacityBytes = 16;

  void set_port(FlightPort* port) { port_ = port; }
  FlightLevel level() const { return level_; }
  std::size_t capacity() const { return ring_.size(); }
  std::uint32_t current_epoch() const { return epoch_; }
  // True once the current epoch's boot record sealed; AppendBoot is then a
  // no-op, so a reboot that interrupts another reboot's bookkeeping cannot
  // duplicate boot records.
  bool boot_recorded() const { return boot_epoch_sealed_ == epoch_; }
  const FlightStats& stats() const { return stats_; }

  // Called from the Mcu reboot path before any boot-record append: the new
  // power life gets a fresh epoch. The epoch counter bump is folded into the
  // reboot restore cost, so epochs count *every* reboot even when the boot
  // record itself cannot be written.
  void NoteReboot() { ++epoch_; }

  // Append entry points. All return false ONLY when a power failure (or
  // starvation) interrupted the append; records filtered out by the level,
  // dropped for size, or appended successfully all return true. A false
  // return means the caller's power already failed mid-charge, so it must
  // propagate the failure (the kernel returns ExecStatus::kPowerFailure).
  bool AppendBoot();
  bool AppendTaskStart(std::uint64_t seq, std::uint32_t task, std::uint32_t path,
                       std::uint32_t attempt);
  bool AppendTaskEnd(std::uint64_t seq, std::uint32_t task, std::uint32_t path);
  bool AppendCommit(std::uint64_t seq, std::uint32_t task, std::uint64_t bytes);
  bool AppendVerdict(std::uint64_t seq, std::uint32_t task, std::uint8_t action,
                     std::uint32_t target_path);
  // `fraction` in [0, 1]; stored as parts-per-thousand.
  bool AppendChargeSnapshot(double fraction);
  // Monitor hot-swap committed (docs/hotswap.md). Like verdicts, swap
  // epochs are recorded at every level except kOff: forensics cannot
  // stitch a cross-version timeline without them. The swap controller uses
  // this record's single-byte seal as the swap's atomic commit point.
  bool AppendSwapEpoch(std::uint64_t old_hash, std::uint64_t new_hash,
                       std::uint32_t image_epoch);

  // Host-side view for the decoder / forensics tooling.
  RingImage Image() const;

 private:
  bool Append(const FlightRecord& record);
  // Evicts the sealed record at head_, keeping head_base_time_ in sync (on
  // hardware this is the FRAM read-back + control-word write the eviction
  // cycle charge models).
  bool EvictOldest();

  std::vector<std::uint8_t> ring_;  // FRAM bytes, zero-initialised at format
  std::uint32_t head_ = 0;          // FRAM control word: oldest sealed record
  std::uint32_t tail_ = 0;          // position of the live terminator byte
  std::size_t used_ = 0;            // sealed bytes in [head_, tail_)
  SimTime last_time_ = 0;           // delta base at tail_
  SimTime head_base_time_ = 0;      // delta base at head_
  std::uint32_t epoch_ = 0;         // FRAM control word: reboot count
  std::int64_t boot_epoch_sealed_ = -1;  // epoch whose boot record sealed
  FlightLevel level_;
  FlightPort* port_ = nullptr;
  FlightStats stats_;
};

}  // namespace artemis::flight

#endif  // SRC_FLIGHT_RECORDER_H_
